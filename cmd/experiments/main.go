// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run fig8,fig11 [-scale 0.5] [-apps crc32,sha]
//	experiments -run all
//	experiments -run fig8 -store runs.store   # persist every simulation
//
// With -store every completed simulation of the grid is appended to the
// persistent experiment store, keyed by config hash and the build's
// commit; cmd/edbpq can then rebuild the same tables without simulating.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"edbp/internal/buildinfo"
	"edbp/internal/experiments"
	"edbp/internal/obs/olog"
	"edbp/internal/store"
)

func main() {
	var (
		run    = flag.String("run", "all", "comma-separated experiment ids (or 'all'); ids: "+ids())
		apps   = flag.String("apps", "", "comma-separated app subset (default: all 20)")
		scale  = flag.Float64("scale", 1.0, "workload scale factor")
		seed   = flag.Uint64("seed", 1, "energy trace seed")
		seeds  = flag.Int("seeds", 0, "energy trace seeds to average (default 3)")
		format = flag.String("format", "text", "output format: text|csv")

		workers = flag.Int("workers", 0, "simulations to run concurrently (default GOMAXPROCS)")
		timeout = flag.Duration("timeout", 0, "abort the whole run after this long (e.g. 30m; 0 = no limit)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after the runs) to this file")

		storeDir = flag.String("store", "", "experiment store directory; every completed simulation is appended to it")
		version  = flag.Bool("version", false, "print the build stamp and exit")
	)
	lf := olog.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Stamp("experiments"))
		return
	}
	logger := olog.MustNew(lf.Options("experiments"))

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			logger.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			logger.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				logger.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				logger.Fatal(err)
			}
		}()
	}

	o := experiments.Options{Scale: *scale, Seed: *seed, Seeds: *seeds, Workers: *workers}
	if *apps != "" {
		o.Apps = strings.Split(*apps, ",")
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			logger.Fatal(err)
		}
		defer st.Close()
		o.Persist = st.PersistHook(buildinfo.Commit(), func() int64 { return time.Now().Unix() })
		logger.Printf("persisting runs to %s (%d already stored)", *storeDir, st.Len())
	}

	// Ctrl-C / SIGTERM cancels the in-flight simulation grid instead of
	// killing the process mid-write; a second signal kills immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	want := map[string]bool{}
	if *run != "all" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	ran := 0
	for _, e := range experiments.All {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		t, err := e.Run(ctx, o)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				logger.Fatalf("%s: -timeout %v expired: %v", e.ID, *timeout, err)
			}
			if errors.Is(err, context.Canceled) {
				logger.Fatalf("%s: interrupted: %v", e.ID, err)
			}
			logger.Fatalf("%s: %v", e.ID, err)
		}
		if *format == "csv" {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			t.Print(os.Stdout)
		}
		fmt.Printf("(%s took %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		logger.Fatalf("no experiments matched -run=%q; ids: %s", *run, ids())
	}
}

func ids() string {
	var out []string
	for _, e := range experiments.All {
		out = append(out, e.ID)
	}
	return strings.Join(out, ",")
}
