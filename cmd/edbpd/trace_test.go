package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"edbp/internal/obs"
	"edbp/internal/obs/olog"
	"edbp/internal/span"
	"edbp/internal/store"
)

// fetchSpans GETs a trace endpoint and parses the JSONL body.
func fetchSpans(t *testing.T, url string) []span.Record {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace Content-Type = %q, want application/x-ndjson", ct)
	}
	recs, err := span.ReadJSONL(resp.Body)
	if err != nil {
		t.Fatalf("bad JSONL from %s: %v", url, err)
	}
	return recs
}

func spanAttr(r span.Record, key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// byName indexes spans by name; fails the test on a duplicate so callers
// can assert exact one-of-each shapes.
func byName(t *testing.T, recs []span.Record) map[string]span.Record {
	t.Helper()
	out := make(map[string]span.Record, len(recs))
	for _, r := range recs {
		if _, dup := out[r.Name]; dup {
			t.Fatalf("duplicate span name %q in %v", r.Name, names(recs))
		}
		out[r.Name] = r
	}
	return out
}

func names(recs []span.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Name
	}
	return out
}

// TestTraceSingleNode drives one fresh run and one cache hit through a
// caller-supplied traceparent and checks the full single-node span tree
// lands on GET /trace: the server span parents run, which parents
// cache-lookup, simulate, and store-append, all in the caller's trace.
func TestTraceSingleNode(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	_, ts := testServer(t, serverOptions{store: st, commit: "test", nodeID: "n1"})

	const parent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req, _ := http.NewRequest("POST", ts.URL+"/run", strings.NewReader(`{"app":"crc32","scheme":"edbp","scale":0.05}`))
	req.Header.Set(span.Header, parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run = %d", resp.StatusCode)
	}
	echo, ok := span.ParseTraceparent(resp.Header.Get(span.Header))
	if !ok {
		t.Fatalf("response traceparent %q unparsable", resp.Header.Get(span.Header))
	}
	if echo.Trace.String() != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("server left the caller's trace: echoed %s", echo.Trace)
	}

	recs := fetchSpans(t, ts.URL+"/trace?trace="+echo.Trace.String())
	spans := byName(t, recs)
	for _, want := range []string{"POST /run", "run", "cache-lookup", "simulate", "store-append"} {
		if _, ok := spans[want]; !ok {
			t.Fatalf("trace missing %q span; have %v", want, names(recs))
		}
	}
	srvSpan, run := spans["POST /run"], spans["run"]
	if srvSpan.Parent.String() != "00f067aa0ba902b7" {
		t.Errorf("server span parent = %s, want the caller's span 00f067aa0ba902b7", srvSpan.Parent)
	}
	if run.Parent != srvSpan.ID {
		t.Errorf("run parent = %s, want server span %s", run.Parent, srvSpan.ID)
	}
	for _, child := range []string{"cache-lookup", "simulate", "store-append"} {
		if spans[child].Parent != run.ID {
			t.Errorf("%s parent = %s, want run span %s", child, spans[child].Parent, run.ID)
		}
	}
	if got := spanAttr(spans["cache-lookup"], "hit"); got != "false" {
		t.Errorf("fresh run cache-lookup hit = %q, want false", got)
	}
	for _, r := range recs {
		if r.Node != "n1" {
			t.Errorf("span %s node = %q, want n1", r.Name, r.Node)
		}
	}

	// The identical request again: a cache hit records run+cache-lookup
	// but never reaches the simulator or the store.
	req2, _ := http.NewRequest("POST", ts.URL+"/run", strings.NewReader(`{"app":"crc32","scheme":"edbp","scale":0.05}`))
	req2.Header.Set(span.Header, "00-aaaa6789abcdef0123456789abcdef00-00f067aa0ba902b7-01")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	hitRecs := fetchSpans(t, ts.URL+"/trace?trace=aaaa6789abcdef0123456789abcdef00")
	hitSpans := byName(t, hitRecs)
	if got := spanAttr(hitSpans["cache-lookup"], "hit"); got != "true" {
		t.Errorf("replay cache-lookup hit = %q, want true", got)
	}
	if _, simulated := hitSpans["simulate"]; simulated {
		t.Error("cache hit recorded a simulate span")
	}

	// Chrome rendering of the same trace is a structurally valid
	// trace_event document naming the node's process.
	chromeResp, err := http.Get(ts.URL + "/trace?trace=" + echo.Trace.String() + "&format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer chromeResp.Body.Close()
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(chromeResp.Body).Decode(&doc); err != nil {
		t.Fatalf("chrome trace undecodable: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	slices, named := 0, false
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
		case "M":
			if ev.Name == "process_name" && ev.Args["name"] == "n1" {
				named = true
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if slices != len(recs) || !named {
		t.Errorf("chrome trace has %d slices (want %d), process named: %v", slices, len(recs), named)
	}
}

// TestTraceEndpointValidation covers the error surface: bad filters and
// formats are 400s, and a -span-off server 404s the whole endpoint.
func TestTraceEndpointValidation(t *testing.T) {
	_, ts := testServer(t, serverOptions{})
	if code := doJSON(t, "GET", ts.URL+"/trace?trace=nothex", "", nil); code != http.StatusBadRequest {
		t.Errorf("bad trace filter = %d, want 400", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/trace?format=svg", "", nil); code != http.StatusBadRequest {
		t.Errorf("bad format = %d, want 400", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/trace", "", nil); code != http.StatusOK {
		t.Errorf("plain /trace = %d, want 200", code)
	}

	_, off := testServer(t, serverOptions{spansOff: true})
	if code := doJSON(t, "GET", off.URL+"/trace", "", nil); code != http.StatusNotFound {
		t.Errorf("/trace with spans off = %d, want 404", code)
	}
}

// TestClusterAssembledTrace is the tentpole acceptance test: a 2-worker
// grid with one worker killed mid-flight yields ONE assembled trace on
// GET /trace/{grid-id} in which the coordinator's grid span parents the
// dispatch attempts — including a failed attempt against the victim and
// a retry excluding it — and the surviving worker's server, queue-wait,
// run, and simulate spans all chain back to the grid root.
func TestClusterAssembledTrace(t *testing.T) {
	coord := newClusterCoordinator(t)
	gate := make(chan struct{})
	victim := newClusterWorker(t, "w1", gate)
	survivor := newClusterWorker(t, "w2", nil)
	defer drainWorker(t, survivor)
	joinWorker(t, coord, "w1", victim.ts.URL)
	joinWorker(t, coord, "w2", survivor.ts.URL)

	victimOwns := 0
	for _, req := range gridRequests() {
		if owner, ok := coord.srv.members.Owner(req.hash(), nil); ok && owner.ID == "w1" {
			victimOwns++
		}
	}
	if victimOwns == 0 {
		t.Skip("ring assigned no cells to the victim; no retry to trace")
	}

	var accepted struct {
		ID string `json:"id"`
	}
	if code := doJSON(t, "POST", coord.ts.URL+"/grid", gridBody, &accepted); code != http.StatusAccepted {
		t.Fatalf("POST /grid = %d", code)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		queued := 0
		victim.srv.jobs.Range(func(_, _ any) bool { queued++; return true })
		if queued >= victimOwns {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never received its %d cells", victimOwns)
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.ts.CloseClientConnections()
	victim.ts.Close()
	close(gate)
	defer drainWorker(t, victim)

	var view gridView
	for deadline = time.Now().Add(60 * time.Second); ; {
		if code := doJSON(t, "GET", coord.ts.URL+"/grid/"+accepted.ID, "", &view); code != http.StatusOK {
			t.Fatalf("GET /grid/%s = %d", accepted.ID, code)
		}
		if view.Summary.Done+view.Summary.Failed == view.Summary.Entries {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("grid stuck: %+v", view.Summary)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.Summary.Done != 6 || view.Summary.Failed != 0 {
		t.Fatalf("grid = %+v, want 6 done", view.Summary)
	}

	// The grid root span is ended by a goroutine watching g.Done(), so it
	// can land an instant after the summary turns terminal: poll for it.
	var recs []span.Record
	for deadline = time.Now().Add(10 * time.Second); ; {
		recs = fetchSpans(t, coord.ts.URL+"/trace/"+accepted.ID)
		rooted := false
		for _, r := range recs {
			if r.Name == "grid" {
				rooted = true
				break
			}
		}
		if rooted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("grid root span never recorded: %v", names(recs))
		}
		time.Sleep(5 * time.Millisecond)
	}
	index := make(map[span.SpanID]span.Record, len(recs))
	var grid span.Record
	var dispatches, failed, retries []span.Record
	perNode := map[string]int{}
	for _, r := range recs {
		index[r.ID] = r
		perNode[r.Node]++
		switch r.Name {
		case "grid":
			grid = r
		case "dispatch":
			dispatches = append(dispatches, r)
			if r.Err != "" {
				failed = append(failed, r)
			}
			if strings.Contains(spanAttr(r, "excluded"), "w1") {
				retries = append(retries, r)
			}
		}
	}
	if grid.Name == "" {
		t.Fatalf("no grid span in assembled trace: %v", names(recs))
	}
	if spanAttr(grid, "done") != "6" || spanAttr(grid, "failed") != "0" {
		t.Errorf("grid span summary attrs = done=%q failed=%q",
			spanAttr(grid, "done"), spanAttr(grid, "failed"))
	}
	// One dispatch per attempt: 6 successes plus every failed try.
	if len(dispatches) != 6+len(failed) || len(failed) == 0 {
		t.Errorf("%d dispatch spans with %d failures, want 6+failures and >=1 failure",
			len(dispatches), len(failed))
	}
	if len(retries) == 0 {
		t.Error("no dispatch span carries the excluded=w1 retry marker")
	}
	for _, d := range dispatches {
		if d.Parent != grid.ID {
			t.Errorf("dispatch %s parents %s, want grid %s", spanAttr(d, "key"), d.Parent, grid.ID)
		}
		if d.Trace != grid.Trace {
			t.Errorf("dispatch left the grid trace: %s != %s", d.Trace, grid.Trace)
		}
	}
	if perNode["w2"] == 0 {
		t.Fatalf("no surviving-worker spans in assembled trace; per-node %v", perNode)
	}

	// Walk a surviving worker's run span back to the grid root: run ->
	// worker server span -> (traceparent hop) -> dispatch -> grid.
	walked := 0
	for _, r := range recs {
		if r.Name != "run" || r.Node != "w2" {
			continue
		}
		walked++
		hops := []string{}
		cur := r
		for cur.ID != grid.ID {
			parent, ok := index[cur.Parent]
			if !ok {
				t.Fatalf("run span %s: broken ancestry at %s (path %v)", r.ID, cur.Parent, hops)
			}
			hops = append(hops, parent.Name)
			cur = parent
			if len(hops) > 10 {
				t.Fatalf("run span %s: ancestry runaway %v", r.ID, hops)
			}
		}
		joined := strings.Join(hops, ",")
		if !strings.Contains(joined, "dispatch") || !strings.Contains(joined, "POST /run") {
			t.Errorf("run ancestry %v skips the dispatch or server span", hops)
		}
	}
	if walked != 6 {
		t.Errorf("assembled trace has %d w2 run spans, want 6", walked)
	}
	// queue-wait spans are siblings of runs under each worker server span.
	queueWaits := 0
	for _, r := range recs {
		if r.Name == "queue-wait" && r.Node == "w2" {
			queueWaits++
			if index[r.Parent].Name != "POST /run" {
				t.Errorf("queue-wait parents %q, want the worker server span", index[r.Parent].Name)
			}
		}
	}
	if queueWaits != 6 {
		t.Errorf("%d queue-wait spans, want 6", queueWaits)
	}

	// The same assembly renders as a valid Chrome trace with both
	// processes named.
	chromeResp, err := http.Get(coord.ts.URL + "/trace/" + accepted.ID + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer chromeResp.Body.Close()
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Args map[string]any `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(chromeResp.Body).Decode(&doc); err != nil {
		t.Fatalf("chrome assembly undecodable: %v", err)
	}
	procs := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[fmt.Sprint(ev.Args["name"])] = true
		}
	}
	if !procs["coord"] || !procs["w2"] {
		t.Errorf("chrome processes = %v, want coord and w2", procs)
	}

	if code := doJSON(t, "GET", coord.ts.URL+"/trace/grid-999", "", nil); code != http.StatusNotFound {
		t.Errorf("unknown grid trace = %d, want 404", code)
	}
}

// TestClusterMetricsFederation checks GET /cluster/metrics merges every
// node's series under its node= label and serves a dead worker's last
// scrape marked stale instead of dropping it.
func TestClusterMetricsFederation(t *testing.T) {
	coord := newClusterCoordinator(t)
	w1 := newClusterWorker(t, "w1", nil)
	w2 := newClusterWorker(t, "w2", nil)
	defer drainWorker(t, w1)
	joinWorker(t, coord, "w1", w1.ts.URL)
	joinWorker(t, coord, "w2", w2.ts.URL)

	var view gridView
	if code := doJSON(t, "POST", coord.ts.URL+"/grid?wait=1", gridBody, &view); code != http.StatusOK {
		t.Fatalf("POST /grid?wait=1 = %d", code)
	}

	type fedView struct {
		Nodes  []fedNode            `json:"nodes"`
		Series []obs.SnapshotSeries `json:"series"`
	}
	var fed fedView
	if code := doJSON(t, "GET", coord.ts.URL+"/cluster/metrics", "", &fed); code != http.StatusOK {
		t.Fatalf("GET /cluster/metrics = %d", code)
	}
	nodeByID := map[string]fedNode{}
	for _, n := range fed.Nodes {
		nodeByID[n.ID] = n
	}
	for _, id := range []string{"coord", "w1", "w2"} {
		n, ok := nodeByID[id]
		if !ok || !n.Scraped || n.Stale {
			t.Fatalf("node %s = %+v, want a fresh scrape", id, n)
		}
	}
	runsByNode := map[string]float64{}
	for _, s := range fed.Series {
		if s.Name == "edbpd_runs_ok_total" && s.Value != nil {
			runsByNode[s.Labels["node"]] += *s.Value
		}
	}
	if runsByNode["w1"]+runsByNode["w2"] != 6 {
		t.Errorf("federated runs_ok by node = %v, want w1+w2 = 6", runsByNode)
	}

	// Kill w2: the next federation response serves its cached series,
	// marked stale with the scrape error, instead of losing the node.
	w2.ts.CloseClientConnections()
	w2.ts.Close()
	drainWorker(t, w2)
	var after fedView
	if code := doJSON(t, "GET", coord.ts.URL+"/cluster/metrics", "", &after); code != http.StatusOK {
		t.Fatalf("GET /cluster/metrics after kill = %d", code)
	}
	staleRuns := map[string]float64{}
	for _, s := range after.Series {
		if s.Name == "edbpd_runs_ok_total" && s.Value != nil {
			staleRuns[s.Labels["node"]] += *s.Value
		}
	}
	for _, n := range after.Nodes {
		if n.ID != "w2" {
			continue
		}
		if !n.Stale || n.Error == "" {
			t.Errorf("dead worker node entry = %+v, want stale with an error", n)
		}
	}
	if staleRuns["w2"] != runsByNode["w2"] {
		t.Errorf("stale w2 runs_ok = %g, want cached %g", staleRuns["w2"], runsByNode["w2"])
	}
}

// syncBuffer is a goroutine-safe log sink for asserting on captured
// slog output while the server is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Test5xxEmitsStructuredLog pins the satellite guarantee: every 5xx
// response produces exactly one structured error line carrying the
// request's trace ID. A full queue (503) is the deterministic trigger.
func Test5xxEmitsStructuredLog(t *testing.T) {
	sink := &syncBuffer{}
	logger, err := olog.New(olog.Options{Component: "edbpd", Format: "json", Node: "n1", W: sink})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	_, ts := testServer(t, serverOptions{queueDepth: 1, workers: 1, holdJobs: gate, logger: logger})
	defer close(gate)

	// Saturate: worker 1 holds the first job, the depth-1 queue holds the
	// second, so a submission must hit "queue full" within a few tries.
	var rejected *http.Response
	for i := 0; i < 20 && rejected == nil; i++ {
		resp, err := http.Post(ts.URL+"/run?async=1", "application/json",
			strings.NewReader(`{"app":"crc32","scheme":"edbp","scale":0.05}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			rejected = resp
		} else if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d = %d", i, resp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rejected == nil {
		t.Fatal("queue never filled")
	}
	tp, ok := span.ParseTraceparent(rejected.Header.Get(span.Header))
	if !ok {
		t.Fatalf("503 response traceparent %q unparsable", rejected.Header.Get(span.Header))
	}

	// The access log write happens just after the response; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	var line map[string]any
	for line == nil {
		for _, l := range strings.Split(sink.String(), "\n") {
			if !strings.Contains(l, "request failed") || !strings.Contains(l, tp.Trace.String()) {
				continue
			}
			line = map[string]any{}
			if err := json.Unmarshal([]byte(l), &line); err != nil {
				t.Fatalf("error line is not JSON: %q (%v)", l, err)
			}
		}
		if line == nil {
			if time.Now().After(deadline) {
				t.Fatalf("no structured error line for trace %s in:\n%s", tp.Trace, sink.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if line["level"] != "ERROR" || line["component"] != "edbpd" || line["node"] != "n1" {
		t.Errorf("error line fields = %v", line)
	}
	if line["status"] != float64(http.StatusServiceUnavailable) || line["trace_id"] != tp.Trace.String() {
		t.Errorf("error line status/trace = %v/%v", line["status"], line["trace_id"])
	}
}
