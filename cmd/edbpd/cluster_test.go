package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"edbp/internal/cluster"
	"edbp/internal/obs"
	"edbp/internal/store"
)

// clusterNode is one in-process fleet member: the server, its HTTP front,
// its private registry (to read per-node counters) and its store shard.
type clusterNode struct {
	srv *server
	ts  *httptest.Server
	reg *obs.Registry
	st  *store.Store
}

func newClusterWorker(t *testing.T, id string, hold chan struct{}) *clusterNode {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	reg := obs.NewRegistry()
	srv := newServer(serverOptions{
		workers: 2, registry: reg, store: st, commit: "test",
		nodeID: id, holdJobs: hold,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &clusterNode{srv: srv, ts: ts, reg: reg, st: st}
}

func newClusterCoordinator(t *testing.T) *clusterNode {
	t.Helper()
	reg := obs.NewRegistry()
	srv := newServer(serverOptions{
		workers: 2, registry: reg, coordinator: true, nodeID: "coord",
		// Tests don't run heartbeat loops; effectively-infinite liveness
		// keeps un-heartbeated workers routable. MarkDead (the dispatch
		// failure path) is unaffected.
		liveness: time.Hour,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return &clusterNode{srv: srv, ts: ts, reg: reg}
}

func joinWorker(t *testing.T, coord *clusterNode, id, url string) {
	t.Helper()
	body := fmt.Sprintf(`{"id":%q,"url":%q}`, id, url)
	if code := doJSON(t, "POST", coord.ts.URL+"/cluster/join", body, nil); code != http.StatusOK {
		t.Fatalf("join %s = %d", id, code)
	}
}

// drainWorkers drains worker servers so their pools exit before stores
// close (the coordinator cleanup from newClusterCoordinator handles itself).
func drainWorker(t *testing.T, n *clusterNode) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := n.srv.Drain(ctx); err != nil {
		t.Errorf("worker drain: %v", err)
	}
}

// gridBody is a small deterministic grid: 1 app x 3 schemes x 2 seeds.
const gridBody = `{"base":{"app":"crc32","scale":0.05},"schemes":["baseline","edbp","decay"],"seeds":[1,2]}`

// gridRequests mirrors gridBody's expansion for reference runs.
func gridRequests() []runRequest {
	var out []runRequest
	for _, scheme := range []string{"baseline", "edbp", "decay"} {
		for _, seed := range []uint64{1, 2} {
			out = append(out, runRequest{App: "crc32", Scale: 0.05, Scheme: scheme, Seed: seed}.normalize())
		}
	}
	return out
}

// TestClusterGridShardExclusivity is the tentpole acceptance test: a
// coordinator and three workers complete a full grid with every cell
// simulated exactly once, each worker's result cache and store holding
// exactly the shard the ring routed to it, and per-node metrics labeled.
func TestClusterGridShardExclusivity(t *testing.T) {
	coord := newClusterCoordinator(t)
	workers := map[string]*clusterNode{}
	for _, id := range []string{"w1", "w2", "w3"} {
		w := newClusterWorker(t, id, nil)
		workers[id] = w
		defer drainWorker(t, w)
		joinWorker(t, coord, id, w.ts.URL)
	}

	var view gridView
	if code := doJSON(t, "POST", coord.ts.URL+"/grid?wait=1", gridBody, &view); code != http.StatusOK {
		t.Fatalf("POST /grid?wait=1 = %d", code)
	}
	if view.Summary.Entries != 6 || view.Summary.Done != 6 || view.Summary.Failed != 0 {
		t.Fatalf("grid summary = %+v, want 6/6 done", view.Summary)
	}

	// Every cell carries its producing node and a result, and the node is
	// exactly the ring owner of its key.
	perNode := map[string]int{}
	for _, e := range view.Entries {
		if e.Node == "" || len(e.Result) == 0 {
			t.Fatalf("entry %s missing node/result: %+v", e.Key, e)
		}
		if e.Attempts != 1 {
			t.Errorf("entry %s took %d attempts with a healthy fleet", e.Key, e.Attempts)
		}
		owner, ok := coord.srv.members.Owner(e.Key, nil)
		if !ok || owner.ID != e.Node {
			t.Errorf("entry %s ran on %s, ring owner is %s", e.Key, e.Node, owner.ID)
		}
		perNode[e.Node]++
	}

	// Zero duplicate simulations: each worker simulated exactly the cells
	// attributed to it, and the fleet total is the entry count.
	total := 0.0
	for id, w := range workers {
		got := w.srv.met.runsOK.Value()
		if got != float64(perNode[id]) {
			t.Errorf("worker %s simulated %g runs, grid attributes %d", id, got, perNode[id])
		}
		total += got
	}
	if total != 6 {
		t.Errorf("fleet simulated %g runs for 6 cells", total)
	}
	if coord.srv.met.runsOK.Value() != 0 {
		t.Errorf("coordinator simulated %g runs locally despite a live fleet", coord.srv.met.runsOK.Value())
	}

	// Store shards are pairwise disjoint and cover the grid.
	union := map[string]string{}
	for id, w := range workers {
		for _, h := range w.st.ConfigHashes() {
			if prev, dup := union[h]; dup {
				t.Errorf("config hash %s persisted on both %s and %s", h, prev, id)
			}
			union[h] = id
		}
	}
	if len(union) != 6 {
		t.Errorf("fleet stores hold %d distinct configs, want 6", len(union))
	}

	// Worker metrics carry the node label; the coordinator counted the
	// dispatches per worker.
	var b strings.Builder
	workers["w1"].reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `node="w1"`) {
		t.Error("worker metrics missing node=\"w1\" const label")
	}
	for id, n := range perNode {
		if got := coord.srv.cmet.coord.Dispatches.With(id).Value(); got != float64(n) {
			t.Errorf("dispatch_total{worker=%q} = %g, want %d", id, got, n)
		}
	}
}

// TestClusterWorkerDeathMidGrid kills one worker while its cells are
// still queued on it. The coordinator must mark it dead, re-dispatch its
// cells to the surviving owners (retry-with-exclusion), and the finished
// grid must be byte-identical to single-node reference runs.
func TestClusterWorkerDeathMidGrid(t *testing.T) {
	coord := newClusterCoordinator(t)
	gate := make(chan struct{}) // freezes the victim so it never completes a cell
	victim := newClusterWorker(t, "w1", gate)
	w2 := newClusterWorker(t, "w2", nil)
	w3 := newClusterWorker(t, "w3", nil)
	defer drainWorker(t, w2)
	defer drainWorker(t, w3)
	joinWorker(t, coord, "w1", victim.ts.URL)
	joinWorker(t, coord, "w2", w2.ts.URL)
	joinWorker(t, coord, "w3", w3.ts.URL)

	// The grid must actually exercise the victim: with 6 deterministic
	// keys over 3 nodes the victim owns some cells unless hashing is
	// pathological — assert rather than assume.
	victimOwns := 0
	for _, req := range gridRequests() {
		if owner, ok := coord.srv.members.Owner(req.hash(), nil); ok && owner.ID == "w1" {
			victimOwns++
		}
	}
	if victimOwns == 0 {
		t.Skip("ring assigned no cells to the victim; grid would not exercise recovery")
	}

	var accepted struct {
		ID      string `json:"id"`
		Entries int    `json:"entries"`
	}
	if code := doJSON(t, "POST", coord.ts.URL+"/grid", gridBody, &accepted); code != http.StatusAccepted {
		t.Fatalf("POST /grid = %d", code)
	}
	if accepted.Entries != 6 {
		t.Fatalf("grid accepted %d entries, want 6", accepted.Entries)
	}

	// Wait until the victim has cells queued (submitted but frozen), then
	// kill it mid-grid: open connections die, the listener goes away.
	deadline := time.Now().Add(30 * time.Second)
	for {
		queued := 0
		victim.srv.jobs.Range(func(_, _ any) bool { queued++; return true })
		if queued >= victimOwns {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never received its %d cells (has %d)", victimOwns, queued)
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.ts.CloseClientConnections()
	victim.ts.Close()
	close(gate) // release the (now unreachable) victim's pool for cleanup
	defer drainWorker(t, victim)

	var view gridView
	for deadline = time.Now().Add(60 * time.Second); ; {
		if code := doJSON(t, "GET", coord.ts.URL+"/grid/"+accepted.ID, "", &view); code != http.StatusOK {
			t.Fatalf("GET /grid/%s = %d", accepted.ID, code)
		}
		if view.Summary.Done+view.Summary.Failed == view.Summary.Entries {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("grid stuck: %+v", view.Summary)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.Summary.Failed != 0 || view.Summary.Done != 6 {
		t.Fatalf("grid after worker death = %+v, want all 6 done", view.Summary)
	}

	retried := 0
	for _, e := range view.Entries {
		if e.Node == "w1" {
			t.Errorf("entry %s attributed to the dead worker", e.Key)
		}
		if e.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Error("no entry recorded a retry despite the victim owning cells")
	}
	if coord.srv.cmet.coord.Deaths.Value() == 0 {
		t.Error("edbpd_cluster_deaths_total stayed 0 after killing a worker")
	}
	if coord.srv.cmet.coord.Retries.Value() == 0 {
		t.Error("edbpd_cluster_retries_total stayed 0 after re-dispatch")
	}

	// Byte-identical acceptance: every recovered cell must equal a fresh
	// single-node run of the same request (the simulator is deterministic;
	// only provenance fields may differ).
	single, singleTS := testServer(t, serverOptions{})
	_ = single
	want := map[string]runOutput{}
	for _, req := range gridRequests() {
		var out runOutput
		body, _ := json.Marshal(req)
		if code := doJSON(t, "POST", singleTS.URL+"/run", string(body), &out); code != http.StatusOK {
			t.Fatalf("reference run = %d", code)
		}
		out.CacheHit, out.Node = false, ""
		want[req.hash()] = out
	}
	for _, e := range view.Entries {
		var got runOutput
		if err := json.Unmarshal(e.Result, &got); err != nil {
			t.Fatalf("entry %s: bad result: %v", e.Key, err)
		}
		got.CacheHit, got.Node = false, ""
		ref, ok := want[e.Key]
		if !ok {
			t.Fatalf("entry %s has no reference run", e.Key)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("entry %s diverged from single-node run:\ngrid:   %+v\nsingle: %+v", e.Key, got, ref)
		}
	}
}

// TestClusterSingleRunDispatch covers the coordinator's /run path: local
// fallback with no fleet, remote dispatch once a worker joins (with node
// provenance and a coordinator-side cache), and the membership endpoints'
// status codes.
func TestClusterSingleRunDispatch(t *testing.T) {
	coord := newClusterCoordinator(t)

	// No workers: the coordinator simulates locally.
	var local runOutput
	if code := doJSON(t, "POST", coord.ts.URL+"/run", `{"app":"crc32","scheme":"baseline","scale":0.05}`, &local); code != http.StatusOK {
		t.Fatalf("local fallback run = %d", code)
	}
	if local.Node != "" {
		t.Errorf("local run attributed to node %q", local.Node)
	}
	if coord.srv.met.runsOK.Value() != 1 {
		t.Errorf("coordinator runs_ok = %g, want 1 (local fallback)", coord.srv.met.runsOK.Value())
	}

	// Heartbeat before join: 404 tells the worker to re-join.
	if code := doJSON(t, "POST", coord.ts.URL+"/cluster/heartbeat", `{"id":"w1","url":"x"}`, nil); code != http.StatusNotFound {
		t.Errorf("heartbeat before join = %d, want 404", code)
	}

	w := newClusterWorker(t, "w1", nil)
	defer drainWorker(t, w)
	joinWorker(t, coord, "w1", w.ts.URL)
	if code := doJSON(t, "POST", coord.ts.URL+"/cluster/heartbeat", `{"id":"w1","url":"x"}`, nil); code != http.StatusOK {
		t.Errorf("heartbeat after join = %d, want 200", code)
	}
	var nodes []cluster.MemberStatus
	if code := doJSON(t, "GET", coord.ts.URL+"/cluster/nodes", "", &nodes); code != http.StatusOK || len(nodes) != 1 || !nodes[0].Alive {
		t.Fatalf("/cluster/nodes = %d %+v", code, nodes)
	}

	// A fresh config now dispatches to the worker.
	var remote runOutput
	if code := doJSON(t, "POST", coord.ts.URL+"/run", `{"app":"crc32","scheme":"edbp","scale":0.05}`, &remote); code != http.StatusOK {
		t.Fatalf("dispatched run = %d", code)
	}
	if remote.Node != "w1" {
		t.Errorf("dispatched run node = %q, want w1", remote.Node)
	}
	if w.srv.met.runsOK.Value() != 1 {
		t.Errorf("worker runs_ok = %g, want 1", w.srv.met.runsOK.Value())
	}
	if coord.srv.met.runsOK.Value() != 1 {
		t.Errorf("coordinator runs_ok = %g after dispatch, want still 1", coord.srv.met.runsOK.Value())
	}

	// The dispatched result is cached coordinator-side.
	var again runOutput
	doJSON(t, "POST", coord.ts.URL+"/run", `{"app":"crc32","scheme":"edbp","scale":0.05}`, &again)
	if !again.CacheHit {
		t.Error("repeat of dispatched run missed the coordinator cache")
	}
	if w.srv.met.runsOK.Value() != 1 {
		t.Errorf("worker re-simulated a cached run (runs_ok = %g)", w.srv.met.runsOK.Value())
	}

	// Leave: the worker stops owning shards; new configs run locally again.
	if code := doJSON(t, "POST", coord.ts.URL+"/cluster/leave", `{"id":"w1","url":"x"}`, nil); code != http.StatusOK {
		t.Fatalf("leave = %d", code)
	}
	var back runOutput
	doJSON(t, "POST", coord.ts.URL+"/run", `{"app":"crc32","scheme":"decay","scale":0.05}`, &back)
	if back.Node != "" {
		t.Errorf("post-leave run attributed to %q, want local", back.Node)
	}
	if code := doJSON(t, "POST", coord.ts.URL+"/cluster/heartbeat", `{"id":"w1","url":"x"}`, nil); code != http.StatusNotFound {
		t.Errorf("heartbeat after leave = %d, want 404", code)
	}
}

// TestClusterGridStream subscribes to the fan-in SSE feed mid-grid and
// checks the event grammar: gauge envelopes carry node+key provenance,
// every cell yields one "entry", and the stream terminates with "done".
func TestClusterGridStream(t *testing.T) {
	coord := newClusterCoordinator(t)
	w := newClusterWorker(t, "w1", nil)
	defer drainWorker(t, w)
	joinWorker(t, coord, "w1", w.ts.URL)

	var accepted struct {
		ID string `json:"id"`
	}
	body := `{"base":{"app":"crc32","scale":0.05},"schemes":["baseline","edbp"]}`
	if code := doJSON(t, "POST", coord.ts.URL+"/grid", body, &accepted); code != http.StatusAccepted {
		t.Fatalf("POST /grid = %d", code)
	}

	resp, err := http.Get(coord.ts.URL + "/grid/" + accepted.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}

	entries, done := 0, false
	err = func() error {
		type evt struct {
			typ  string
			data []byte
		}
		ch := make(chan evt, 64)
		go func() {
			cluster.ParseSSE(resp.Body, func(event string, data []byte) {
				d := make([]byte, len(data))
				copy(d, data)
				ch <- evt{event, d}
			})
			close(ch)
		}()
		timeout := time.After(60 * time.Second)
		for {
			select {
			case e, ok := <-ch:
				if !ok {
					return nil
				}
				switch e.typ {
				case "gauge":
					var env struct {
						Node  string          `json:"node"`
						Key   string          `json:"key"`
						Gauge json.RawMessage `json:"gauge"`
					}
					if err := json.Unmarshal(e.data, &env); err != nil || env.Node != "w1" || env.Key == "" || len(env.Gauge) == 0 {
						return fmt.Errorf("bad gauge envelope %s (err %v)", e.data, err)
					}
				case "entry":
					entries++
				case "done":
					done = true
					return nil
				}
			case <-timeout:
				return fmt.Errorf("stream never finished (entries %d)", entries)
			}
		}
	}()
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("stream ended without a done event")
	}
	if entries != 2 {
		t.Errorf("saw %d entry events, want 2", entries)
	}
}
