package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"edbp/internal/cluster"
	"edbp/internal/obs"
	"edbp/internal/span"
)

// scrapeTimeout bounds one federation fetch of a worker's /metrics or
// /trace. Workers are LAN peers; a second of silence means dead-enough.
const scrapeTimeout = 2 * time.Second

// handleTrace serves GET /trace on every node: this process's recorded
// service spans, newest-window, optionally filtered with ?trace=<32 hex>
// and rendered as JSONL (default) or a Chrome trace_event document with
// ?format=chrome. The coordinator's federation endpoints scrape it.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.spans == nil {
		httpError(w, http.StatusNotFound, "span recording disabled (start edbpd without -span-off)")
		return
	}
	var filter span.TraceID
	if v := r.URL.Query().Get("trace"); v != "" {
		t, ok := span.ParseTraceID(v)
		if !ok {
			httpError(w, http.StatusBadRequest, "bad trace id %q (want 32 hex chars)", v)
			return
		}
		filter = t
	}
	writeSpans(w, r, s.spans.Snapshot(filter))
}

// writeSpans renders an assembled span set in the requested format.
func writeSpans(w http.ResponseWriter, r *http.Request, recs []span.Record) {
	span.SortRecords(recs)
	switch r.URL.Query().Get("format") {
	case "", "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		span.WriteJSONL(w, recs)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		span.WriteChromeTrace(w, recs)
	default:
		httpError(w, http.StatusBadRequest, "bad format %q (want jsonl or chrome)", r.URL.Query().Get("format"))
	}
}

// gridRecord is a coordinator-side grid plus the trace that spans it —
// the handle GET /trace/{grid-id} assembles the cross-node view from.
type gridRecord struct {
	grid  *cluster.Grid
	trace span.TraceID
}

// fedNode is one fleet member's scrape status in GET /cluster/metrics.
type fedNode struct {
	ID    string `json:"id"`
	URL   string `json:"url,omitempty"`
	Alive bool   `json:"alive"`
	// Scraped: this response carries fresh series from the node.
	// Stale: the node was unreachable (or dead) and its series are the
	// cached last-successful scrape — absent entirely when there is no
	// cache either (Error says why).
	Scraped     bool   `json:"scraped"`
	Stale       bool   `json:"stale,omitempty"`
	ScrapedUnix int64  `json:"scraped_unix,omitempty"`
	Error       string `json:"error,omitempty"`
}

// scrapeCacheEntry is the last successful scrape of one worker, served
// stale-marked while the worker is unreachable so a dead node's final
// counters stay visible instead of vanishing from dashboards.
type scrapeCacheEntry struct {
	series []obs.SnapshotSeries
	at     time.Time
}

// handleClusterMetrics serves GET /cluster/metrics on the coordinator:
// the merged metrics snapshot of the whole fleet — its own registry
// plus every registered worker's /metrics?format=json — as
// {"nodes":[…scrape statuses…],"series":[…]}. Series are merged by
// concatenation: every node's series already carry its node="…" const
// label, so the union is collision-free and group-by-node works
// downstream.
func (s *server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	type scrape struct {
		node   fedNode
		series []obs.SnapshotSeries
	}
	members := s.members.All()
	results := make([]scrape, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m cluster.MemberStatus) {
			defer wg.Done()
			res := scrape{node: fedNode{ID: m.ID, URL: m.URL, Alive: m.Alive}}
			series, err := s.scrapeWorkerMetrics(r.Context(), m.Node)
			if err == nil {
				res.node.Scraped = true
				res.node.ScrapedUnix = time.Now().Unix()
				res.series = series
				s.scrapes.Store(m.ID, &scrapeCacheEntry{series: series, at: time.Now()})
			} else {
				res.node.Error = err.Error()
				if v, ok := s.scrapes.Load(m.ID); ok {
					c := v.(*scrapeCacheEntry)
					res.node.Stale = true
					res.node.ScrapedUnix = c.at.Unix()
					res.series = c.series
				}
			}
			results[i] = res
		}(i, m)
	}
	wg.Wait()

	self := fedNode{ID: s.opts.nodeID, Alive: true, Scraped: true, ScrapedUnix: time.Now().Unix()}
	nodes := []fedNode{self}
	series := s.reg.Snapshot()
	for _, res := range results {
		nodes = append(nodes, res.node)
		series = append(series, res.series...)
	}
	sort.Slice(nodes[1:], func(i, j int) bool { return nodes[1+i].ID < nodes[1+j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"nodes": nodes, "series": series})
}

// scrapeWorkerMetrics fetches one worker's JSON metrics snapshot.
func (s *server) scrapeWorkerMetrics(ctx context.Context, n cluster.Node) ([]obs.SnapshotSeries, error) {
	raw, err := s.scrapeWorker(ctx, n, "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	var series []obs.SnapshotSeries
	if err := json.Unmarshal(raw, &series); err != nil {
		return nil, fmt.Errorf("bad metrics body from %s: %v", n.ID, err)
	}
	return series, nil
}

func (s *server) scrapeWorker(ctx context.Context, n cluster.Node, path string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, scrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+path, nil)
	if err != nil {
		return nil, err
	}
	client := http.DefaultClient
	if s.coord != nil && s.coord.Client != nil {
		client = s.coord.Client
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s%s: HTTP %d", n.ID, path, resp.StatusCode)
	}
	return raw, nil
}

// handleGridTrace serves GET /trace/{grid-id} on the coordinator: the
// assembled cross-node trace of one grid — the coordinator's own spans
// (request, grid root, one dispatch span per attempt) merged with every
// live worker's spans for the grid's trace ID, scraped over /trace.
// Formats as in /trace (?format=jsonl|chrome). Spans on workers that
// died mid-grid are gone with the process; the coordinator's failed
// dispatch spans still record that the attempts happened.
func (s *server) handleGridTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.grids.Load(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown grid %q", id)
		return
	}
	gr := v.(*gridRecord)
	if gr.trace.IsZero() || s.spans == nil {
		httpError(w, http.StatusNotFound, "grid %q has no trace (span recording disabled)", id)
		return
	}

	recs := s.spans.Snapshot(gr.trace)
	members := s.members.All()
	remote := make([][]span.Record, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		if !m.Alive {
			continue
		}
		wg.Add(1)
		go func(i int, n cluster.Node) {
			defer wg.Done()
			raw, err := s.scrapeWorker(r.Context(), n, "/trace?trace="+gr.trace.String())
			if err != nil {
				s.log.Warn("trace scrape failed", "worker", n.ID, "grid", id, "err", err.Error())
				return
			}
			got, err := span.ReadJSONL(bytes.NewReader(raw))
			if err != nil {
				s.log.Warn("trace scrape unparsable", "worker", n.ID, "grid", id, "err", err.Error())
				return
			}
			remote[i] = got
		}(i, m.Node)
	}
	wg.Wait()
	for _, rs := range remote {
		recs = append(recs, rs...)
	}
	writeSpans(w, r, recs)
}
