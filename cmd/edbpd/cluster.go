package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"edbp/internal/cluster"
	"edbp/internal/obs"
	"edbp/internal/span"
)

// maxGridEntries bounds one POST /grid expansion: a full paper matrix is
// ~13 apps x 12 schemes x a few seeds, so this is generous while still
// refusing a runaway cross product.
const maxGridEntries = 4096

// clusterMetrics is the coordinator's instrument set over the server
// registry, alongside the cluster package's own dispatch counters.
type clusterMetrics struct {
	coord       cluster.Metrics
	grids       *obs.Counter
	gridEntries *obs.Counter
	gridFailed  *obs.Counter
}

// initCluster wires coordinator mode into the server: membership, the
// consistent-hash dispatcher, the /cluster/* registration endpoints, and
// the /grid sharded-dispatch API. Called from newServer.
func (s *server) initCluster() {
	liveness := s.opts.liveness
	if liveness <= 0 {
		liveness = 6 * time.Second
	}
	vnodes := s.opts.vnodes
	if vnodes <= 0 {
		vnodes = cluster.DefaultVnodes
	}
	s.members = cluster.NewMembership(liveness, vnodes)
	s.cmet = &clusterMetrics{
		coord: cluster.Metrics{
			Dispatches: s.reg.CounterVec("edbpd_cluster_dispatch_total",
				"Runs completed on a remote worker, by worker id.", "worker"),
			Retries: s.reg.Counter("edbpd_cluster_retries_total",
				"Run re-dispatches after a worker failed mid-job."),
			Deaths: s.reg.Counter("edbpd_cluster_deaths_total",
				"Workers marked dead by a failed dispatch."),
			Frames: s.reg.Counter("edbpd_cluster_frames_total",
				"SSE gauge frames relayed from workers into grid streams."),
		},
		grids: s.reg.Counter("edbpd_grids_total",
			"Sharded grids accepted via POST /grid."),
		gridEntries: s.reg.Counter("edbpd_grid_entries_total",
			"Grid cells dispatched across all grids."),
		gridFailed: s.reg.Counter("edbpd_grid_entries_failed_total",
			"Grid cells that exhausted retry-with-exclusion and failed."),
	}
	s.reg.GaugeFunc("edbpd_cluster_workers",
		"Live (routable) workers registered with this coordinator.",
		func() float64 { return float64(s.members.AliveCount()) })
	s.coord = &cluster.Coordinator{Members: s.members, Metrics: &s.cmet.coord, Spans: s.spans}

	s.mux.HandleFunc("POST /cluster/join", s.handleClusterJoin)
	s.mux.HandleFunc("POST /cluster/heartbeat", s.handleClusterHeartbeat)
	s.mux.HandleFunc("POST /cluster/leave", s.handleClusterLeave)
	s.mux.HandleFunc("GET /cluster/nodes", s.handleClusterNodes)
	s.mux.HandleFunc("GET /cluster/metrics", s.handleClusterMetrics)
	s.mux.HandleFunc("POST /grid", s.handleGrid)
	s.mux.HandleFunc("GET /grid/{id}", s.handleGridStatus)
	s.mux.HandleFunc("GET /grid/{id}/stream", s.handleGridStream)
	s.mux.HandleFunc("GET /trace/{id}", s.handleGridTrace)
}

// dispatch routes one run to the worker fleet when this server is a
// coordinator with live workers. handled=false means the caller should
// simulate locally: not a coordinator, or an empty fleet (ErrNoWorkers) —
// a coordinator alone is still a working single-node edbpd.
func (s *server) dispatch(ctx context.Context, key string, req runRequest) (out *runOutput, handled bool, err error) {
	if s.coord == nil {
		return nil, false, nil
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, true, err
	}
	raw, node, _, err := s.coord.Execute(ctx, key, body, nil)
	if errors.Is(err, cluster.ErrNoWorkers) {
		return nil, false, nil
	}
	if err != nil {
		return nil, true, err
	}
	out = &runOutput{}
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, true, fmt.Errorf("cluster: bad result from %s: %w", node, err)
	}
	out.Node = node
	return out, true, nil
}

func (s *server) decodeNode(w http.ResponseWriter, r *http.Request) (cluster.Node, bool) {
	var n cluster.Node
	if err := json.NewDecoder(r.Body).Decode(&n); err != nil {
		httpError(w, http.StatusBadRequest, "bad node body: %v", err)
		return n, false
	}
	if n.ID == "" || n.URL == "" {
		httpError(w, http.StatusBadRequest, "node needs id and url, got %+v", n)
		return n, false
	}
	return n, true
}

func (s *server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	n, ok := s.decodeNode(w, r)
	if !ok {
		return
	}
	s.members.Join(n)
	writeJSON(w, http.StatusOK, map[string]string{"status": "joined", "id": n.ID})
}

func (s *server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	n, ok := s.decodeNode(w, r)
	if !ok {
		return
	}
	if !s.members.Heartbeat(n.ID) {
		// Unknown worker (we restarted, or it never joined): 404 tells it
		// to re-join rather than keep heartbeating into the void.
		httpError(w, http.StatusNotFound, "unknown worker %q — re-join", n.ID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleClusterLeave(w http.ResponseWriter, r *http.Request) {
	n, ok := s.decodeNode(w, r)
	if !ok {
		return
	}
	s.members.Leave(n.ID)
	writeJSON(w, http.StatusOK, map[string]string{"status": "left", "id": n.ID})
}

func (s *server) handleClusterNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.members.All())
}

// gridRequest is the POST /grid body: either an explicit list of runs, or
// a cross product of apps x schemes x seeds over a base request. Every
// expanded cell is normalized, validated, and deduplicated by config hash
// before dispatch.
type gridRequest struct {
	Runs    []runRequest `json:"runs,omitempty"`
	Base    runRequest   `json:"base,omitempty"`
	Apps    []string     `json:"apps,omitempty"`
	Schemes []string     `json:"schemes,omitempty"`
	Seeds   []uint64     `json:"seeds,omitempty"`
}

// expand materializes the grid cells. Cross-product axes left empty
// default to the base request's (normalized) value.
func (g gridRequest) expand() ([]runRequest, error) {
	if len(g.Runs) > 0 {
		if len(g.Apps) > 0 || len(g.Schemes) > 0 || len(g.Seeds) > 0 {
			return nil, errors.New("give either runs or a base cross product, not both")
		}
		return g.Runs, nil
	}
	apps := g.Apps
	if len(apps) == 0 {
		apps = []string{g.Base.App}
	}
	schemes := g.Schemes
	if len(schemes) == 0 {
		schemes = []string{g.Base.Scheme}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{g.Base.Seed}
	}
	if n := len(apps) * len(schemes) * len(seeds); n > maxGridEntries {
		return nil, fmt.Errorf("grid expands to %d cells (max %d)", n, maxGridEntries)
	}
	out := make([]runRequest, 0, len(apps)*len(schemes)*len(seeds))
	for _, app := range apps {
		for _, scheme := range schemes {
			for _, seed := range seeds {
				req := g.Base
				req.App = app
				if scheme != "" {
					req.Scheme = scheme
				}
				req.Seed = seed
				out = append(out, req)
			}
		}
	}
	return out, nil
}

// gridView is the GET /grid/{id} (and POST /grid?wait=1) response shape.
type gridView struct {
	Summary cluster.GridSummary   `json:"summary"`
	Entries []cluster.EntryStatus `json:"entries"`
}

func gridViewOf(g *cluster.Grid) gridView {
	return gridView{Summary: g.Summary(), Entries: g.Snapshot()}
}

// handleGrid serves POST /grid: expand, validate, dedupe, and dispatch
// every cell to the worker owning its config hash. The default response is
// 202 with the grid id for GET /grid/{id} and /grid/{id}/stream; ?wait=1
// blocks until every cell is terminal and returns the full result set.
func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpUnavailable(w, drainRetryAfterSeconds, "draining")
		return
	}
	var greq gridRequest
	if err := json.NewDecoder(r.Body).Decode(&greq); err != nil {
		httpError(w, http.StatusBadRequest, "bad grid body: %v", err)
		return
	}
	reqs, err := greq.expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(reqs) == 0 {
		httpError(w, http.StatusBadRequest, "empty grid")
		return
	}
	if len(reqs) > maxGridEntries {
		httpError(w, http.StatusBadRequest, "grid has %d cells (max %d)", len(reqs), maxGridEntries)
		return
	}
	seen := make(map[string]bool, len(reqs))
	entries := make([]cluster.GridEntry, 0, len(reqs))
	for i, req := range reqs {
		req = req.normalize()
		if _, err := req.config(); err != nil {
			httpError(w, http.StatusBadRequest, "cell %d: %v", i, err)
			return
		}
		key := req.hash()
		if seen[key] {
			continue
		}
		seen[key] = true
		body, err := json.Marshal(req)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "cell %d: %v", i, err)
			return
		}
		entries = append(entries, cluster.GridEntry{Key: key, Body: body})
	}
	if s.members.AliveCount() == 0 {
		httpUnavailable(w, drainRetryAfterSeconds, "no live workers — grids need a fleet (POST /cluster/join)")
		return
	}

	id := fmt.Sprintf("grid-%d", s.nextGrid.Add(1))
	s.cmet.grids.Inc()
	s.cmet.gridEntries.Add(float64(len(entries)))
	// Grids outlive their submitting request: dispatch under the server's
	// lifetime, bounded per-entry by the run timeout the workers enforce.
	// The grid root span anchors the cross-node trace: every dispatch span
	// (and, over the traceparent header, every worker-side span) descends
	// from it, so GET /trace/{grid-id} can assemble the whole picture.
	gctx := context.Background()
	gsp := s.spans.Start(span.FromCtx(r.Context()), "grid")
	var trace span.TraceID
	if gsp != nil {
		gsp.Attr("grid", id).Attr("entries", strconv.Itoa(len(entries)))
		gctx = span.With(gctx, gsp.Ctx())
		trace = gsp.Ctx().Trace
	}
	g := s.coord.StartGrid(gctx, id, entries, func(key string, result json.RawMessage) {
		out := &runOutput{}
		if err := json.Unmarshal(result, out); err == nil {
			s.cache.Store(key, out)
		}
	})
	s.grids.Store(id, &gridRecord{grid: g, trace: trace})
	if gsp != nil {
		go func() {
			<-g.Done()
			sum := g.Summary()
			gsp.Attr("done", strconv.Itoa(sum.Done)).Attr("failed", strconv.Itoa(sum.Failed))
			gsp.End()
		}()
	}

	if r.URL.Query().Get("wait") == "" {
		writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "entries": len(entries)})
		return
	}
	select {
	case <-g.Done():
		if failed := g.Summary().Failed; failed > 0 {
			s.cmet.gridFailed.Add(float64(failed))
		}
		writeJSON(w, http.StatusOK, gridViewOf(g))
	case <-r.Context().Done():
		// The client gave up; the grid keeps running and stays pollable.
	}
}

func (s *server) loadGrid(w http.ResponseWriter, r *http.Request) (*cluster.Grid, bool) {
	id := r.PathValue("id")
	v, ok := s.grids.Load(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown grid %q", id)
		return nil, false
	}
	return v.(*gridRecord).grid, true
}

func (s *server) handleGridStatus(w http.ResponseWriter, r *http.Request) {
	g, ok := s.loadGrid(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, gridViewOf(g))
}

// handleGridStream serves GET /grid/{id}/stream: the fan-in SSE feed of a
// grid — "gauge" envelopes ({node, key, gauge}) relayed from every worker,
// one "entry" event per terminal cell, and a final "done" summary. The
// subscription is severed when the client disconnects. Subscribing to a
// grid that already finished ends immediately with a synthetic "done"
// summary (the hub is closed, so no per-cell events replay).
func (s *server) handleGridStream(w http.ResponseWriter, r *http.Request) {
	g, ok := s.loadGrid(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	events, cancel := g.Subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				// Hub closed (grid finished before or during this stream):
				// emit the summary so late subscribers still get closure.
				if data, err := json.Marshal(g.Summary()); err == nil {
					fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
					fl.Flush()
				}
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data)
			fl.Flush()
			if ev.Type == "done" {
				return
			}
		}
	}
}
