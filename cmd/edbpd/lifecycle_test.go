package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	tracepkg "edbp/internal/trace"
)

// TestDrainEnqueueRace hammers intake from 8 goroutines while Drain flips
// the server, repeatedly. Every submission must resolve deterministically:
// 202 accepted (and then actually finished by the pool — Drain returning
// nil proves that), or 503 with a Retry-After header and a typed reason.
// No hung request, no send-on-closed-channel panic (the race detector
// covers the close-during-send window), no bare 503.
func TestDrainEnqueueRace(t *testing.T) {
	type rejection struct {
		code       int
		retryAfter string
		reason     string
	}
	for round := 0; round < 4; round++ {
		s := newServer(serverOptions{queueDepth: 4, workers: 2})
		ts := httptest.NewServer(s.Handler())

		const clients, perClient = 8, 6
		results := make(chan rejection, clients*perClient)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				for k := 0; k < perClient; k++ {
					body := fmt.Sprintf(`{"app":"crc32","scheme":"baseline","scale":0.05,"seed":%d}`,
						round*1000+i*100+k+1)
					resp, err := http.Post(ts.URL+"/run?async=1", "application/json", strings.NewReader(body))
					if err != nil {
						t.Errorf("submit: %v", err)
						return
					}
					var e struct {
						Error string `json:"error"`
					}
					json.NewDecoder(resp.Body).Decode(&e)
					resp.Body.Close()
					results <- rejection{resp.StatusCode, resp.Header.Get("Retry-After"), e.Error}
				}
			}(i)
		}
		close(start)

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := s.Drain(ctx); err != nil {
			t.Fatalf("round %d: drain: %v", round, err)
		}
		cancel()
		wg.Wait()
		ts.Close()
		close(results)

		for r := range results {
			switch r.code {
			case http.StatusAccepted:
			case http.StatusServiceUnavailable:
				if r.retryAfter == "" {
					t.Fatalf("round %d: 503 %q without Retry-After", round, r.reason)
				}
				if r.reason != "draining" && !strings.HasPrefix(r.reason, "queue full") {
					t.Fatalf("round %d: 503 with untyped reason %q", round, r.reason)
				}
			default:
				t.Fatalf("round %d: submission = %d (%q), want 202 or 503", round, r.code, r.reason)
			}
		}
	}
}

// TestDrainAbortMarksPendingFailed wedges the single worker on the
// holdJobs gate, then drains with a deadline far shorter than the wedge.
// The aborted drain must (a) return an error naming the pending count,
// (b) mark both the parked and the queued job failed with the typed
// drain-abort reason — no phantom "queued"/"running" after shutdown — and
// (c) keep them failed even after the worker wakes up and dequeues them.
func TestDrainAbortMarksPendingFailed(t *testing.T) {
	gate := make(chan struct{})
	s := newServer(serverOptions{queueDepth: 4, workers: 1, holdJobs: gate})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(seed int) jobView {
		var j jobView
		body := fmt.Sprintf(`{"app":"crc32","scheme":"baseline","scale":0.05,"seed":%d}`, seed)
		if code := doJSON(t, "POST", ts.URL+"/run?async=1", body, &j); code != http.StatusAccepted {
			t.Fatalf("submit seed %d = %d", seed, code)
		}
		return j
	}
	a := submit(1) // worker dequeues this one and parks on the gate
	b := submit(2) // stays in the queue channel

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	err := s.Drain(ctx)
	cancel()
	if err == nil {
		t.Fatal("drain with a wedged worker returned nil")
	}
	if !strings.Contains(err.Error(), "drain aborted with 2 jobs") {
		t.Errorf("drain error = %v, want it to count 2 pending jobs", err)
	}

	for _, id := range []string{a.ID, b.ID} {
		var got jobView
		doJSON(t, "GET", ts.URL+"/jobs/"+id, "", &got)
		if got.Status != "failed" || !strings.Contains(got.Error, "drain aborted") {
			t.Errorf("job %s after aborted drain = %q (%q), want failed with drain-abort reason",
				id, got.Status, got.Error)
		}
	}

	// Release the worker. It dequeues the already-failed jobs; job.start
	// must refuse them so neither is resurrected (or simulated).
	close(gate)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		var got jobView
		doJSON(t, "GET", ts.URL+"/jobs/"+id, "", &got)
		if got.Status != "failed" {
			t.Errorf("job %s resurrected to %q after the worker woke", id, got.Status)
		}
	}
	if s.met.runsOK.Value() != 0 {
		t.Errorf("aborted jobs were simulated anyway (runs_ok = %g)", s.met.runsOK.Value())
	}
}

// TestStreamSamplerUnbound drives sampleRun directly through the client-
// disconnect path: ctx is cancelled while the run (runDone) is still open.
// The sampler must close its frames channel and exit — the ranged read
// below only returns if it does.
func TestStreamSamplerUnbound(t *testing.T) {
	rec := tracepkg.NewRecorder(tracepkg.Options{Label: "t", EventCap: 8, SampleCap: 8, SampleEvery: 1e-3})
	lr := &liveRun{label: "t", rec: rec, done: make(chan struct{})}
	defer close(lr.done)

	ctx, cancel := context.WithCancel(context.Background())
	frames := sampleRun(ctx, lr, time.Millisecond, lr.done)
	cancel() // the client went away; the run is still in flight
	select {
	case _, ok := <-frames:
		for ok {
			_, ok = <-frames
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sampler did not close frames after ctx cancellation")
	}
}

// TestStreamAbortGoroutineBaseline opens /stream against a held job (the
// handler parks waiting for a live run that never comes), aborts the
// client, and asserts the process goroutine count returns to its
// pre-stream baseline — neither the handler's wait loop nor a sampler may
// outlive the request.
func TestStreamAbortGoroutineBaseline(t *testing.T) {
	gate := make(chan struct{})
	_, ts := testServer(t, serverOptions{workers: 1, holdJobs: gate})
	defer close(gate)

	var j jobView
	if code := doJSON(t, "POST", ts.URL+"/run?async=1",
		`{"app":"crc32","scheme":"baseline","scale":0.05}`, &j); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	baseline := runtime.NumGoroutine()

	for i := 0; i < 3; i++ {
		// The handler parks in its wait-for-live-run loop (the worker holds
		// the job before it ever starts) and hasn't sent headers yet, so the
		// only way out is the request context expiring — exactly a client
		// that gave up.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/stream?job="+j.ID+"&interval_ms=1", nil)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		cancel()
	}

	// Connection teardown is asynchronous; give the runtime a bounded
	// window to shed the per-request goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines %d > baseline %d after aborted streams\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
