package main

import (
	"edbp/internal/obs"
	"edbp/internal/sim"
	tracepkg "edbp/internal/trace"
)

// Histogram bucket layouts. Run wall time spans interactive small runs
// (milliseconds) through full-matrix jobs (minutes); throughput brackets
// the engine's measured ~2e7 events/s so regressions shift mass across
// bucket boundaries visibly.
var (
	runSecondsBuckets   = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}
	eventsPerSecBuckets = []float64{1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8}
	queueWaitBuckets    = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
)

// serverMetrics is edbpd's instrument set, resolved once against an
// obs.Registry so hot paths observe through pre-bound children. A nil
// *serverMetrics disables observation entirely: every method no-ops from
// the receiver check, adding zero allocations to the run path (pinned by
// TestNilMetricsZeroAllocs).
type serverMetrics struct {
	requests    *obs.Counter
	runsOK      *obs.Counter
	runsErr     *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	queueFull   *obs.Counter
	simSeconds  *obs.Counter

	jobsQueued  *obs.Gauge
	jobsRunning *obs.Gauge

	runSeconds   *obs.Histogram
	runEventsPS  *obs.Histogram
	queueWait    *obs.Histogram
	runsByConfig *obs.CounterVec

	traceEvents    [tracepkg.KindCount]*obs.Counter
	traceDropped   *obs.Counter // ring="events"
	samplesDropped *obs.Counter // ring="samples"

	storeAppends      *obs.Counter
	storeAppendErrors *obs.Counter
	storeAppendSecs   *obs.Histogram
	storeQueries      *obs.Counter
	storeQueryErrors  *obs.Counter
}

// newServerMetrics registers edbpd's families on reg. A nil reg yields a
// nil (disabled) metric set.
func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	m := &serverMetrics{
		requests:    reg.Counter("edbpd_requests_total", "HTTP requests served."),
		runsOK:      reg.Counter("edbpd_runs_ok_total", "Simulations completed."),
		runsErr:     reg.Counter("edbpd_runs_error_total", "Simulations failed or canceled."),
		cacheHits:   reg.Counter("edbpd_cache_hits_total", "Runs answered from the config-hash result cache."),
		cacheMisses: reg.Counter("edbpd_cache_misses_total", "Runs that missed the config-hash result cache and simulated."),
		queueFull:   reg.Counter("edbpd_queue_full_total", "Async submissions rejected for a full queue."),
		simSeconds:  reg.Counter("edbpd_sim_seconds_total", "Simulated wall-clock seconds across completed runs."),
		runSeconds: reg.Histogram("edbpd_run_seconds",
			"Host wall time per completed simulation run.", runSecondsBuckets),
		runEventsPS: reg.Histogram("edbpd_run_events_per_second",
			"Simulator throughput per completed run (instructions per host second).", eventsPerSecBuckets),
		queueWait: reg.Histogram("edbpd_queue_wait_seconds",
			"Time async jobs spent queued before a worker dequeued them.", queueWaitBuckets),
		runsByConfig: reg.CounterVec("edbpd_runs_by_config_total",
			"Completed runs by workload app and scheme.", "app", "scheme"),
	}
	jobs := reg.GaugeVec("edbpd_jobs", "Jobs by state.", "state")
	m.jobsQueued = jobs.With("queued")
	m.jobsRunning = jobs.With("running")
	events := reg.CounterVec("edbpd_trace_events_total",
		"Simulator trace events by kind (internal/trace), summed over completed runs.", "kind")
	for k := 0; k < tracepkg.KindCount; k++ {
		m.traceEvents[k] = events.With(tracepkg.Kind(k).String())
	}
	dropped := reg.CounterVec("edbpd_trace_dropped_total",
		"Trace-ring overwrites (recorded but no longer exportable), by ring.", "ring")
	m.traceDropped = dropped.With("events")
	m.samplesDropped = dropped.With("samples")
	m.storeAppends = reg.Counter("edbpd_store_appends_total",
		"Completed runs appended to the experiment store.")
	m.storeAppendErrors = reg.Counter("edbpd_store_append_errors_total",
		"Experiment-store appends that failed (the run's response was still served).")
	m.storeAppendSecs = reg.Histogram("edbpd_store_append_seconds",
		"Host wall time per experiment-store append.", queueWaitBuckets)
	m.storeQueries = reg.Counter("edbpd_store_queries_total",
		"GET /query statements executed against the experiment store.")
	m.storeQueryErrors = reg.Counter("edbpd_store_query_errors_total",
		"GET /query statements rejected (parse or execution failure).")
	return m
}

// observeStoreAppend records one experiment-store append attempt.
func (m *serverMetrics) observeStoreAppend(ok bool, seconds float64) {
	if m == nil {
		return
	}
	if ok {
		m.storeAppends.Inc()
	} else {
		m.storeAppendErrors.Inc()
	}
	m.storeAppendSecs.Observe(seconds)
}

// observeStoreQuery counts one GET /query execution.
func (m *serverMetrics) observeStoreQuery(ok bool) {
	if m == nil {
		return
	}
	if ok {
		m.storeQueries.Inc()
	} else {
		m.storeQueryErrors.Inc()
	}
}

// observeRun records one successful simulation: aggregate counters, the
// latency/throughput histograms, per-config counters, and the trace-kind
// and ring-drop aggregates from the run's summary.
func (m *serverMetrics) observeRun(app, scheme string, res *sim.Result, hostSeconds float64) {
	if m == nil {
		return
	}
	m.runsOK.Inc()
	m.simSeconds.Add(res.WallTime)
	m.runSeconds.Observe(hostSeconds)
	if hostSeconds > 0 {
		m.runEventsPS.Observe(float64(res.Instructions) / hostSeconds)
	}
	m.runsByConfig.With(app, scheme).Inc()
	if sum := res.TraceSummary; sum != nil {
		for k, n := range sum.ByKind {
			m.traceEvents[k].Add(float64(n))
		}
		m.traceDropped.Add(float64(sum.Dropped))
		m.samplesDropped.Add(float64(sum.SamplesDropped))
	}
}

// observeRunError counts a failed or canceled simulation.
func (m *serverMetrics) observeRunError() {
	if m == nil {
		return
	}
	m.runsErr.Inc()
}

// observeCache counts one result-cache lookup.
func (m *serverMetrics) observeCache(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.cacheHits.Inc()
	} else {
		m.cacheMisses.Inc()
	}
}
