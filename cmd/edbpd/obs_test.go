package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"edbp/internal/obs"
	"edbp/internal/obs/obstest"
	"edbp/internal/sim"
	"edbp/internal/trace"
)

// TestMetricsExposition drives a sync run plus an async job through the
// server and checks the /metrics contract: the exact Prometheus content
// type, # HELP/# TYPE on every family, and the new registry-backed series
// (histograms, per-config counters, cache misses, ring-drop counters).
func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t, serverOptions{workers: 1})

	if code := doJSON(t, "POST", ts.URL+"/run", `{"app":"crc32","scheme":"edbp","scale":0.05}`, nil); code != http.StatusOK {
		t.Fatalf("sync run = %d", code)
	}
	var j jobView
	if code := doJSON(t, "POST", ts.URL+"/run?async=1", `{"app":"crc32","scheme":"baseline","scale":0.05}`, &j); code != http.StatusAccepted {
		t.Fatalf("async run = %d", code)
	}
	waitForJob(t, ts.URL, j.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	obstest.AssertHelpTypeComplete(t, text)

	for _, want := range []string{
		"edbpd_requests_total",
		"edbpd_runs_ok_total 2",
		"edbpd_cache_misses_total 2",
		`edbpd_runs_by_config_total{app="crc32",scheme="EDBP"} 1`,
		`edbpd_runs_by_config_total{app="crc32",scheme="NVSRAMCache"} 1`,
		`edbpd_run_seconds_bucket{le="+Inf"} 2`,
		"edbpd_run_seconds_count 2",
		"edbpd_run_events_per_second_count 2",
		"edbpd_queue_wait_seconds_count 1",
		`edbpd_trace_events_total{kind="checkpoint"}`,
		`edbpd_trace_dropped_total{ring="events"}`,
		`edbpd_trace_dropped_total{ring="samples"}`,
		"edbpd_queue_depth 0",
		"edbpd_sim_seconds_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", text)
	}
}

// TestMetricsJSONSnapshot: ?format=json serves the registry's snapshot.
func TestMetricsJSONSnapshot(t *testing.T) {
	_, ts := testServer(t, serverOptions{})
	doJSON(t, "POST", ts.URL+"/run", `{"app":"crc32","scheme":"edbp","scale":0.05}`, nil)

	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var snap []obs.SnapshotSeries
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	found := false
	for _, s := range snap {
		if s.Name == "edbpd_runs_ok_total" {
			found = true
			if s.Value == nil || *s.Value != 1 {
				t.Errorf("edbpd_runs_ok_total snapshot = %+v, want value 1", s)
			}
		}
		if s.Name == "edbpd_run_seconds" && (s.Count == nil || *s.Count != 1 || len(s.Buckets) == 0) {
			t.Errorf("edbpd_run_seconds snapshot = %+v, want count 1 with buckets", s)
		}
	}
	if !found {
		t.Error("snapshot missing edbpd_runs_ok_total")
	}
}

// waitForJob polls GET /jobs/{id} until done (fails the test on failure
// or timeout).
func waitForJob(t *testing.T, base, id string) *jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var got jobView
		if code := doJSON(t, "GET", base+"/jobs/"+id, "", &got); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		switch got.Status {
		case "done":
			return &got
		case "failed":
			t.Fatalf("job %s failed: %s", id, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamSSE submits an async job and follows GET /stream?job=...: at
// least one gauge frame with live capacitor state must arrive while the
// run is in flight, and the stream must close with a done event.
func TestStreamSSE(t *testing.T) {
	_, ts := testServer(t, serverOptions{workers: 1})

	var j jobView
	// Full-scale run (~1e6 events) so the stream has time to observe it;
	// the handler also flushes the final sample, so even a fast run must
	// deliver at least one frame.
	if code := doJSON(t, "POST", ts.URL+"/run?async=1", `{"app":"crc32","scheme":"edbp","scale":1.0,"seed":77}`, &j); code != http.StatusAccepted {
		t.Fatalf("async submit = %d", code)
	}

	resp, err := http.Get(ts.URL + "/stream?job=" + j.ID + "&interval_ms=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stream = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	var (
		frames  int
		sawDone bool
		event   string
		frame   gaugeFrame
	)
	sc := bufio.NewScanner(resp.Body)
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() {
		if time.Now().After(deadline) {
			t.Fatal("stream did not finish in time")
		}
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event == "gauge" {
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &frame); err != nil {
					t.Fatalf("bad gauge frame: %v", err)
				}
				frames++
			}
			if event == "done" {
				sawDone = true
			}
		}
		if sawDone {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if frames == 0 {
		t.Fatal("no gauge frames delivered")
	}
	if !sawDone {
		t.Error("stream ended without a done event")
	}
	// The last frame must look like a live EDBP run: a charged capacitor
	// and a monotone sample ordinal.
	if frame.Seq == 0 || frame.VoltageV <= 0 {
		t.Errorf("last frame implausible: %+v", frame)
	}
	if frame.Label != "crc32/EDBP/RFHome" {
		t.Errorf("frame label = %q", frame.Label)
	}
	waitForJob(t, ts.URL, j.ID)
}

// TestStreamNoRun: without any run in flight, /stream is a 404; an
// unknown job id is a 404 too.
func TestStreamNoRun(t *testing.T) {
	_, ts := testServer(t, serverOptions{})
	if code := doJSON(t, "GET", ts.URL+"/stream", "", nil); code != http.StatusNotFound {
		t.Errorf("GET /stream with no run = %d, want 404", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/stream?job=nope", "", nil); code != http.StatusNotFound {
		t.Errorf("GET /stream?job=nope = %d, want 404", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/stream?interval_ms=bogus", "", nil); code != http.StatusBadRequest {
		t.Errorf("GET /stream?interval_ms=bogus = %d, want 400", code)
	}
}

// TestPprofGating: /debug/pprof is mounted only when the option is set.
func TestPprofGating(t *testing.T) {
	_, off := testServer(t, serverOptions{})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/profile"} {
		if code := doJSON(t, "GET", off.URL+path, "", nil); code != http.StatusNotFound {
			t.Errorf("GET %s without -pprof = %d, want 404", path, code)
		}
	}

	_, on := testServer(t, serverOptions{pprof: true})
	resp, err := http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline with -pprof = %d, want 200", resp.StatusCode)
	}
	// A real (1 s) CPU profile must be reachable — the acceptance gate.
	resp, err = http.Get(on.URL + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/profile with -pprof = %d, want 200 (%s)", resp.StatusCode, body)
	}
}

// TestNilMetricsZeroAllocs pins the disabled-observation contract for the
// run path: with no registry attached, every observation helper the run
// path calls is a no-op with zero allocations.
func TestNilMetricsZeroAllocs(t *testing.T) {
	var m *serverMetrics
	res := &sim.Result{
		WallTime:     1.5,
		Instructions: 1e6,
		TraceSummary: &trace.Summary{Events: 10, Dropped: 2, Samples: 5, SamplesDropped: 1,
			ByKind: make([]uint64, trace.KindCount)},
	}
	if avg := testing.AllocsPerRun(1000, func() {
		m.observeCache(false)
		m.observeCache(true)
		m.observeRun("crc32", "EDBP", res, 0.01)
		m.observeRunError()
	}); avg != 0 {
		t.Errorf("nil serverMetrics observation allocates %.2f times per run, want 0", avg)
	}
}
