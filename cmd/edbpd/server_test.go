package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T, opts serverOptions) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

// jobView mirrors the job JSON without the server-side sync fields.
type jobView struct {
	ID     string     `json:"id"`
	Status string     `json:"status"`
	Result *runOutput `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
}

func doJSON(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: bad JSON: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestRunSync covers the synchronous POST /run path and the config-hash
// result cache: the second identical request must be a cache hit with the
// same numbers.
func TestRunSync(t *testing.T) {
	s, ts := testServer(t, serverOptions{})

	var first runOutput
	code := doJSON(t, "POST", ts.URL+"/run", `{"app":"crc32","scheme":"edbp","scale":0.05}`, &first)
	if code != http.StatusOK {
		t.Fatalf("POST /run = %d, want 200", code)
	}
	if first.Instructions == 0 || first.WallSeconds == 0 {
		t.Fatalf("empty result: %+v", first)
	}
	if first.App != "crc32" || first.Scheme != "EDBP" {
		t.Errorf("result identifies %s/%s, want crc32/EDBP", first.App, first.Scheme)
	}
	if first.CacheHit {
		t.Error("first run reported cache_hit")
	}

	var second runOutput
	doJSON(t, "POST", ts.URL+"/run", `{"app":"crc32","scheme":"edbp","scale":0.05}`, &second)
	if !second.CacheHit {
		t.Error("identical rerun was not served from the cache")
	}
	if second.Instructions != first.Instructions || second.WallSeconds != first.WallSeconds {
		t.Error("cached result differs from the original")
	}
	if hits := s.met.cacheHits.Value(); hits != 1 {
		t.Errorf("cache hits = %g, want 1", hits)
	}
	if misses := s.met.cacheMisses.Value(); misses != 1 {
		t.Errorf("cache misses = %g, want 1", misses)
	}
}

// TestRunValidation: bad configs are 400s with a JSON error, not runs.
func TestRunValidation(t *testing.T) {
	_, ts := testServer(t, serverOptions{})
	for _, body := range []string{
		`{"scheme":"edbp"}`,                // missing app
		`{"app":"crc32","scheme":"bogus"}`, // unknown scheme
		`{"app":"crc32","trace":"Lunar"}`,  // unknown energy trace
		`not json`,
	} {
		var e struct {
			Error string `json:"error"`
		}
		if code := doJSON(t, "POST", ts.URL+"/run", body, &e); code != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, code)
		}
		if e.Error == "" {
			t.Errorf("POST %s: missing error message", body)
		}
	}
}

// TestRunAsync drives a job through the queue: 202 with an id, then
// GET /jobs/{id} until done, with the same Result JSON as the sync path.
func TestRunAsync(t *testing.T) {
	_, ts := testServer(t, serverOptions{workers: 1})

	var j jobView
	code := doJSON(t, "POST", ts.URL+"/run?async=1", `{"app":"crc32","scheme":"baseline","scale":0.05}`, &j)
	if code != http.StatusAccepted {
		t.Fatalf("POST /run?async=1 = %d, want 202", code)
	}
	if j.ID == "" || (j.Status != "queued" && j.Status != "running") {
		t.Fatalf("bad job snapshot: %+v", j)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var got jobView
		if code := doJSON(t, "GET", ts.URL+"/jobs/"+j.ID, "", &got); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", j.ID, code)
		}
		if got.Status == "done" {
			if got.Result == nil || got.Result.Instructions == 0 {
				t.Fatalf("done job has no result: %+v", got)
			}
			break
		}
		if got.Status == "failed" {
			t.Fatalf("job failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", got.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Malformed ids are client errors; well-formed-but-unknown ids are 404
	// (TestJobIDResponseCodes pins the full matrix).
	if code := doJSON(t, "GET", ts.URL+"/jobs/nope", "", nil); code != http.StatusBadRequest {
		t.Errorf("GET /jobs/nope = %d, want 400", code)
	}
}

// TestQueueBound freezes the single worker (holdJobs gate) so the depth-1
// queue fills deterministically: worker holds job 1, job 2 queues, and
// every further submission is a 503 until the gate opens.
func TestQueueBound(t *testing.T) {
	gate := make(chan struct{})
	s, ts := testServer(t, serverOptions{queueDepth: 1, workers: 1, holdJobs: gate})
	defer close(gate)

	submit := func(i int) int {
		body := fmt.Sprintf(`{"app":"crc32","scheme":"baseline","scale":0.05,"seed":%d}`, i+1)
		return doJSON(t, "POST", ts.URL+"/run?async=1", body, nil)
	}
	// Job 1 lands in the queue; the worker dequeues it and parks on the
	// gate. Job 2 may either queue immediately or race the dequeue, so
	// wait until the queue slot is actually occupied.
	if code := submit(0); code != http.StatusAccepted {
		t.Fatalf("submit 0 = %d", code)
	}
	if code := submit(1); code != http.StatusAccepted {
		t.Fatalf("submit 1 = %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 2; i < 5; i++ {
		if code := submit(i); code != http.StatusServiceUnavailable {
			t.Errorf("submit %d = %d, want 503 while the queue is full", i, code)
		}
	}
	if s.met.queueFull.Value() == 0 {
		t.Error("edbpd_queue_full_total not incremented")
	}
}

// TestHealthzAndMetrics: healthy server reports ok and well-formed
// Prometheus text including the trace-event aggregate.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := testServer(t, serverOptions{})

	var h struct {
		Status string `json:"status"`
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", "", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, h)
	}

	doJSON(t, "POST", ts.URL+"/run", `{"app":"crc32","scheme":"edbp","scale":0.05}`, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"edbpd_requests_total",
		"edbpd_runs_ok_total 1",
		"edbpd_trace_events_total{kind=\"checkpoint\"}",
		"edbpd_sim_seconds_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestDrain: draining flips healthz to 503, rejects new runs, and finishes
// queued jobs before returning.
func TestDrain(t *testing.T) {
	s := newServer(serverOptions{workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var j jobView
	if code := doJSON(t, "POST", ts.URL+"/run?async=1", `{"app":"crc32","scheme":"baseline","scale":0.05}`, &j); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if code := doJSON(t, "GET", ts.URL+"/healthz", "", nil); code != http.StatusServiceUnavailable {
		t.Errorf("healthz while drained = %d, want 503", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/run", `{"app":"crc32"}`, nil); code != http.StatusServiceUnavailable {
		t.Errorf("POST /run while drained = %d, want 503", code)
	}

	// The queued job must have completed, not been dropped.
	var got jobView
	doJSON(t, "GET", ts.URL+"/jobs/"+j.ID, "", &got)
	if got.Status != "done" {
		t.Errorf("queued job finished as %q, want done", got.Status)
	}

	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Errorf("second drain: %v", err)
	}
}
