// Command edbpd serves the simulator as a batch HTTP service.
//
// Usage:
//
//	edbpd [-addr :8080] [-queue 64] [-workers N] [-run-timeout 15m] [-pprof]
//
// Endpoints:
//
//	POST /run        run one simulation synchronously; the body is a JSON
//	                 config ({"app":"crc32","scheme":"edbp",...}), the
//	                 response the Result JSON. With ?async=1 the job enters
//	                 a bounded queue and the response is 202 + a job id.
//	GET  /jobs/{id}  poll an async job: queued | running | done | failed.
//	GET  /healthz    liveness; 503 once the server starts draining.
//	GET  /metrics    the internal/obs registry in Prometheus text format
//	                 0.0.4 (counters, gauges, run/queue histograms, trace
//	                 event and ring-drop aggregates); ?format=json returns
//	                 the JSON snapshot.
//	GET  /stream     Server-Sent Events feed of sampled gauges (capacitor
//	                 voltage, live/gated/dirty blocks, FPR, zombie ratio)
//	                 from an in-flight run; ?job=<id> follows an async job.
//	GET  /runs       stored runs from the experiment store (-store): filters
//	                 app/scheme/seed/commit/config_hash, latest=1, limit=N;
//	                 format=raw returns a run's stored encoding byte for
//	                 byte.
//	GET  /query      q=<statement> in the store's SELECT grammar (runs,
//	                 agg, delta, wcet, apps/schemes/commits); JSON table by
//	                 default, format=text for the plain rendering.
//	GET  /debug/pprof/*  net/http/pprof, only when -pprof is set.
//
// Identical configs are answered from a sha256 config-hash result cache;
// fresh runs share the process-wide workload and energy-trace memoization.
// With -store DIR every fresh completed run is also appended to the
// persistent experiment store (keyed by config hash and the build's
// commit), queryable via /runs, /query and cmd/edbpq across restarts.
// SIGTERM/SIGINT stops intake (healthz flips to 503), finishes queued
// jobs, and exits 0 — a clean drain for rolling restarts.
//
// Example:
//
//	curl -s -X POST localhost:8080/run \
//	    -d '{"app":"crc32","scheme":"edbp","scale":0.1}' | jq .wall_seconds
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edbp/internal/buildinfo"
	"edbp/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("edbpd: ")

	var (
		addr         = flag.String("addr", ":8080", "listen address")
		queue        = flag.Int("queue", 64, "async job queue depth (503 when full)")
		workers      = flag.Int("workers", 2, "async queue worker goroutines")
		runTimeout   = flag.Duration("run-timeout", 15*time.Minute, "per-run deadline, sync and async")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "how long to wait for queued jobs on shutdown")
		pprofFlag    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		storeDir     = flag.String("store", "", "experiment store directory; persists every fresh completed run and enables /runs and /query")
		version      = flag.Bool("version", false, "print the build stamp and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Stamp("edbpd"))
		return
	}

	opts := serverOptions{
		queueDepth: *queue,
		workers:    *workers,
		runTimeout: *runTimeout,
		pprof:      *pprofFlag,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		opts.store = st
		opts.commit = buildinfo.Commit()
		log.Printf("experiment store at %s (%d runs, commit %s)", *storeDir, st.Len(), opts.commit)
	}
	srv := newServer(opts)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("signal received; draining (up to %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop intake and wait for queued jobs first, then close HTTP with the
	// remaining budget so in-flight sync requests finish too.
	if err := srv.Drain(dctx); err != nil {
		log.Fatal(err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("drained cleanly")
}
