// Command edbpd serves the simulator as a batch HTTP service.
//
// Usage:
//
//	edbpd [-addr :8080] [-queue 64] [-workers N] [-run-timeout 15m] [-pprof]
//	      [-log-level info] [-log-format text] [-span-off]
//
// Endpoints:
//
//	POST /run        run one simulation synchronously; the body is a JSON
//	                 config ({"app":"crc32","scheme":"edbp",...}), the
//	                 response the Result JSON. With ?async=1 the job enters
//	                 a bounded queue and the response is 202 + a job id.
//	GET  /jobs/{id}  poll an async job: queued | running | done | failed.
//	GET  /healthz    liveness; 503 once the server starts draining.
//	GET  /metrics    the internal/obs registry in Prometheus text format
//	                 0.0.4 (counters, gauges, run/queue histograms, trace
//	                 event and ring-drop aggregates); ?format=json returns
//	                 the JSON snapshot.
//	GET  /stream     Server-Sent Events feed of sampled gauges (capacitor
//	                 voltage, live/gated/dirty blocks, FPR, zombie ratio)
//	                 from an in-flight run; ?job=<id> follows an async job.
//	GET  /runs       stored runs from the experiment store (-store): filters
//	                 app/scheme/seed/commit/config_hash, latest=1, limit=N;
//	                 format=raw returns a run's stored encoding byte for
//	                 byte.
//	GET  /query      q=<statement> in the store's SELECT grammar (runs,
//	                 agg, delta, wcet, apps/schemes/commits); JSON table by
//	                 default, format=text for the plain rendering.
//	GET  /trace      this process's recorded service spans (dispatch,
//	                 queue-wait, run, cache-lookup, simulate, store-append)
//	                 as JSONL; ?trace=<32 hex> filters one trace and
//	                 ?format=chrome renders a Perfetto-loadable Chrome
//	                 trace_event document. Incoming requests carrying a
//	                 W3C traceparent header join the caller's trace; the
//	                 minted/continued traceparent is echoed back.
//	GET  /debug/pprof/*  net/http/pprof, only when -pprof is set.
//
// Logging: every binary in this repo takes -log-level (debug|info|warn|
// error) and -log-format (text|json). Text keeps the historical
// "edbpd: msg" lines; json emits one slog object per line with
// component, node, and — on request logs — trace_id correlation fields.
// Every 5xx response logs exactly one structured error line.
//
// Cluster mode (see DESIGN.md §12). With -coordinator the process also
// serves:
//
//	POST /cluster/join       worker registration ({"id","url"})
//	POST /cluster/heartbeat  liveness renewal; 404 tells the worker to
//	                         re-join (the coordinator restarted)
//	POST /cluster/leave      graceful deregistration before a drain
//	GET  /cluster/nodes      every registered worker with liveness state
//	POST /grid               a sharded experiment grid: cells (explicit
//	                         runs, or base x apps x schemes x seeds) are
//	                         deduplicated by config hash and dispatched to
//	                         the worker owning each hash on a consistent
//	                         ring; 202 + grid id, or the full result set
//	                         with ?wait=1
//	GET  /grid/{id}          grid summary + per-cell status
//	GET  /grid/{id}/stream   fan-in SSE: relayed worker gauges wrapped
//	                         {node,key,gauge}, per-cell "entry" events, a
//	                         final "done" summary
//	GET  /cluster/metrics    federation: the coordinator's own metrics
//	                         snapshot merged with a live scrape of every
//	                         worker's /metrics (series keyed by node="..."
//	                         labels); unreachable workers are served from
//	                         the last successful scrape, marked stale
//	GET  /trace/{grid-id}    the assembled cross-node trace of one grid:
//	                         coordinator grid/dispatch spans merged with
//	                         every worker's spans for that trace, sorted;
//	                         ?format=chrome for Perfetto
//
// A worker is an ordinary edbpd started with -join <coordinator-url>: it
// registers, heartbeats, and serves the same /run API the coordinator
// dispatches to. Each worker's result cache and -store shard hold exactly
// the config hashes the ring routes to it, so the fleet's stores form a
// partitioned, disjoint result set (audited via store.ConfigHashes).
// Workers that die mid-job are marked dead and their cells re-dispatched
// to the next ring owner (retry-with-exclusion); a coordinator with no
// live workers falls back to simulating locally. -node-id stamps every
// metrics series with a node="..." label so fleet dashboards aggregate.
//
// Identical configs are answered from a sha256 config-hash result cache;
// fresh runs share the process-wide workload and energy-trace memoization.
// With -store DIR every fresh completed run is also appended to the
// persistent experiment store (keyed by config hash and the build's
// commit), queryable via /runs, /query and cmd/edbpq across restarts.
// SIGTERM/SIGINT stops intake (healthz flips to 503), deregisters from
// the coordinator when in worker mode, finishes queued jobs, and exits 0
// — a clean drain for rolling restarts.
//
// Example:
//
//	curl -s -X POST localhost:8080/run \
//	    -d '{"app":"crc32","scheme":"edbp","scale":0.1}' | jq .wall_seconds
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"edbp/internal/buildinfo"
	"edbp/internal/cluster"
	"edbp/internal/obs/olog"
	"edbp/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		queue        = flag.Int("queue", 64, "async job queue depth (503 when full)")
		workers      = flag.Int("workers", 2, "async queue worker goroutines")
		runTimeout   = flag.Duration("run-timeout", 15*time.Minute, "per-run deadline, sync and async")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "how long to wait for queued jobs on shutdown")
		pprofFlag    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		storeDir     = flag.String("store", "", "experiment store directory; persists every fresh completed run and enables /runs and /query")
		version      = flag.Bool("version", false, "print the build stamp and exit")

		coordinator = flag.Bool("coordinator", false, "enable cluster-coordinator mode: /cluster/* registration and /grid sharded dispatch")
		joinURL     = flag.String("join", "", "coordinator base URL to register with (worker mode), e.g. http://host:8080")
		nodeID      = flag.String("node-id", "", "this process's fleet id; labels every metrics series node=\"...\" (default: derived from -addr in cluster modes)")
		advertise   = flag.String("advertise", "", "base URL the coordinator should reach this worker at (default http://127.0.0.1<addr> when -addr is :port)")
		heartbeat   = flag.Duration("heartbeat", 2*time.Second, "worker heartbeat cadence")
		liveness    = flag.Duration("liveness", 6*time.Second, "coordinator: how long a silent worker keeps owning shards")
		vnodes      = flag.Int("vnodes", 0, "coordinator: virtual nodes per worker on the hash ring (0 = default)")
		spanOff     = flag.Bool("span-off", false, "disable service span recording (/trace and /trace/{grid-id} return 404)")
	)
	lf := olog.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Stamp("edbpd"))
		return
	}

	logger := olog.MustNew(lf.Options("edbpd"))
	if *coordinator && *joinURL != "" {
		logger.Fatal("-coordinator and -join are mutually exclusive (a worker is not a coordinator)")
	}
	if (*coordinator || *joinURL != "") && *nodeID == "" {
		*nodeID = "edbpd" + strings.ReplaceAll(*addr, ":", "-")
	}
	if *nodeID != "" {
		// Rebuild with the node correlation field once the ID is settled.
		lo := lf.Options("edbpd")
		lo.Node = *nodeID
		logger = olog.MustNew(lo)
	}
	opts := serverOptions{
		queueDepth:  *queue,
		workers:     *workers,
		runTimeout:  *runTimeout,
		pprof:       *pprofFlag,
		coordinator: *coordinator,
		liveness:    *liveness,
		vnodes:      *vnodes,
		nodeID:      *nodeID,
		spansOff:    *spanOff,
		logger:      logger,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			logger.Fatal(err)
		}
		defer st.Close()
		opts.store = st
		opts.commit = buildinfo.Commit()
		logger.Printf("experiment store at %s (%d runs, commit %s)", *storeDir, st.Len(), opts.commit)
	}
	srv := newServer(opts)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)
	if *coordinator {
		logger.Printf("coordinator mode: workers register at POST /cluster/join")
	}

	var wk *cluster.Worker
	var stopHeartbeats context.CancelFunc
	if *joinURL != "" {
		adv := *advertise
		if adv == "" {
			if strings.HasPrefix(*addr, ":") {
				adv = "http://127.0.0.1" + *addr
			} else {
				adv = "http://" + *addr
			}
		}
		wk = &cluster.Worker{
			Node:           cluster.Node{ID: *nodeID, URL: adv},
			CoordinatorURL: strings.TrimRight(*joinURL, "/"),
			Heartbeat:      *heartbeat,
			Logf:           logger.Printf,
		}
		var wctx context.Context
		wctx, stopHeartbeats = context.WithCancel(context.Background())
		go wk.Run(wctx)
	}

	select {
	case err := <-errCh:
		logger.Fatal(err)
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining (up to %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if wk != nil {
		// Deregister first so the coordinator reroutes this worker's shards
		// while we finish the jobs already queued here.
		if err := wk.Leave(dctx); err != nil {
			logger.Printf("%v (draining anyway)", err)
		}
		stopHeartbeats()
	}
	// Stop intake and wait for queued jobs first, then close HTTP with the
	// remaining budget so in-flight sync requests finish too.
	if err := srv.Drain(dctx); err != nil {
		logger.Fatal(err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	logger.Printf("drained cleanly")
}
