package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"edbp/internal/cache"
	"edbp/internal/cluster"
	"edbp/internal/energy"
	"edbp/internal/nvm"
	"edbp/internal/obs"
	"edbp/internal/obs/olog"
	"edbp/internal/sim"
	"edbp/internal/span"
	"edbp/internal/store"
	tracepkg "edbp/internal/trace"
)

// runRequest is the POST /run body. Zero-valued fields select the paper's
// Table II defaults, mirroring cmd/edbpsim's flags.
type runRequest struct {
	App    string  `json:"app"`
	Scheme string  `json:"scheme"`
	Trace  string  `json:"trace,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`

	CacheBytes int     `json:"cache_bytes,omitempty"`
	CacheWays  int     `json:"cache_ways,omitempty"`
	Policy     string  `json:"policy,omitempty"`
	NVM        string  `json:"nvm,omitempty"`
	MemMB      int64   `json:"mem_mb,omitempty"`
	CapUF      float64 `json:"cap_uf,omitempty"`

	ICacheSRAM    bool `json:"icache_sram,omitempty"`
	PredictICache bool `json:"predict_icache,omitempty"`
	Leak80Off     bool `json:"leak80off,omitempty"`
}

// normalize fills defaults so equivalent requests hash identically.
func (r runRequest) normalize() runRequest {
	if r.Scheme == "" {
		r.Scheme = "edbp"
	}
	r.Scheme = strings.ToLower(r.Scheme)
	if r.Trace == "" {
		r.Trace = "RFHome"
	}
	if r.Scale == 0 {
		r.Scale = 1.0
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.CacheBytes == 0 {
		r.CacheBytes = 4096
	}
	if r.CacheWays == 0 {
		r.CacheWays = 4
	}
	if r.Policy == "" {
		r.Policy = "LRU"
	}
	if r.NVM == "" {
		r.NVM = "ReRAM"
	}
	if r.MemMB == 0 {
		r.MemMB = 16
	}
	if r.CapUF == 0 {
		r.CapUF = 0.47
	}
	return r
}

// hash keys the result cache: sha256 over the canonical (normalized) JSON
// encoding of the request.
func (r runRequest) hash() string {
	b, _ := json.Marshal(r)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// config translates the request into a sim.Config.
func (r runRequest) config() (sim.Config, error) {
	if r.App == "" {
		return sim.Config{}, fmt.Errorf("missing required field %q", "app")
	}
	sch, err := parseScheme(r.Scheme)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Default(r.App, sch)
	cfg.Scale = r.Scale
	cfg.SourceSeed = r.Seed
	cfg.DCacheBytes = r.CacheBytes
	cfg.DCacheWays = r.CacheWays
	cfg.MemBytes = r.MemMB << 20
	cfg.Capacitor.Capacitance = r.CapUF * 1e-6
	cfg.ICacheSRAM = r.ICacheSRAM
	cfg.PredictICache = r.PredictICache
	if r.Leak80Off {
		cfg.DCacheLeakFactor = 0.2
	}
	if cfg.TraceKind, err = energy.ParseTraceKind(r.Trace); err != nil {
		return sim.Config{}, err
	}
	if cfg.DCachePolicy, err = cache.ParsePolicy(r.Policy); err != nil {
		return sim.Config{}, err
	}
	if cfg.MemTech, err = nvm.ParseTech(r.NVM); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}

func parseScheme(s string) (sim.Scheme, error) {
	switch strings.ToLower(s) {
	case "baseline", "nvsramcache", "none":
		return sim.Baseline, nil
	case "sdbp":
		return sim.SDBP, nil
	case "decay", "cachedecay":
		return sim.Decay, nil
	case "amc":
		return sim.AMC, nil
	case "edbp":
		return sim.EDBP, nil
	case "decay+edbp", "combined":
		return sim.DecayEDBP, nil
	case "amc+edbp":
		return sim.AMCEDBP, nil
	case "counting":
		return sim.Counting, nil
	case "reftrace":
		return sim.RefTrace, nil
	case "counting+edbp":
		return sim.CountingEDBP, nil
	case "reftrace+edbp":
		return sim.RefTraceEDBP, nil
	case "ideal":
		return sim.Ideal, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", s)
	}
}

// runOutput is the Result JSON returned by POST /run and GET /jobs/{id}.
// Field names are stable; cmd/edbpsim -json uses the same vocabulary.
type runOutput struct {
	App    string `json:"app"`
	Scheme string `json:"scheme"`
	Trace  string `json:"trace"`

	WallSeconds   float64 `json:"wall_seconds"`
	ActiveSeconds float64 `json:"active_seconds"`
	OffSeconds    float64 `json:"off_seconds"`
	Instructions  uint64  `json:"instructions"`

	PowerCycles int `json:"power_cycles"`
	Checkpoints int `json:"checkpoints"`
	Outages     int `json:"outages"`

	DCacheMissRate float64 `json:"dcache_miss_rate"`
	ICacheMissRate float64 `json:"icache_miss_rate"`

	EnergyTotalJ      float64 `json:"energy_total_j"`
	EnergyDCacheJ     float64 `json:"energy_dcache_j"`
	EnergyICacheJ     float64 `json:"energy_icache_j"`
	EnergyMemoryJ     float64 `json:"energy_memory_j"`
	EnergyCheckpointJ float64 `json:"energy_checkpoint_j"`

	Coverage float64 `json:"coverage"`
	Accuracy float64 `json:"accuracy"`

	Truncated bool `json:"truncated"`
	CacheHit  bool `json:"cache_hit"`
	// Node is the worker that simulated this run, set by a coordinator on
	// dispatched results. Empty for locally simulated runs.
	Node string `json:"node,omitempty"`
}

func output(req runRequest, res *sim.Result) *runOutput {
	e := res.Energy
	return &runOutput{
		App:            res.Config.App,
		Scheme:         res.Config.Scheme.String(),
		Trace:          res.Config.TraceKind.String(),
		WallSeconds:    res.WallTime,
		ActiveSeconds:  res.ActiveTime,
		OffSeconds:     res.OffTime,
		Instructions:   res.Instructions,
		PowerCycles:    res.PowerCycles,
		Checkpoints:    res.Checkpoints,
		Outages:        res.Outages,
		DCacheMissRate: res.DCacheStats.MissRate(),
		ICacheMissRate: res.ICacheStats.MissRate(),

		EnergyTotalJ:      e.Total(),
		EnergyDCacheJ:     e.DCache(),
		EnergyICacheJ:     e.ICache(),
		EnergyMemoryJ:     e.Memory,
		EnergyCheckpointJ: e.Checkpoint,

		Coverage:  res.Prediction.Coverage(),
		Accuracy:  res.Prediction.Accuracy(),
		Truncated: res.Truncated,
	}
}

// liveRun exposes an in-flight simulation's trace recorder to the SSE
// stream handler. done closes when the run finishes (success or failure),
// after which the recorder is quiescent and its last sample stays
// readable.
type liveRun struct {
	label string
	rec   *tracepkg.Recorder
	done  chan struct{}
}

// job tracks one async run through the bounded queue.
type job struct {
	ID     string     `json:"id"`
	Status string     `json:"status"` // queued | running | done | failed
	Result *runOutput `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
	req    runRequest
	mu     sync.Mutex
	done   chan struct{}

	enqueuedAt time.Time
	// parent is the submitting request's span context: the async
	// worker's queue-wait and run spans nest under it even though the
	// HTTP request span itself ends at the 202.
	parent span.Context
	live   atomic.Pointer[liveRun] // set once the worker starts simulating
}

func (j *job) snapshot() job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return job{ID: j.ID, Status: j.Status, Result: j.Result, Error: j.Error}
}

// start moves a queued job to running. It refuses when the job is already
// terminal — the drain-abort path may have failed it while it sat in the
// queue, and a worker dequeuing it afterwards must not resurrect it into a
// phantom "running" (or waste a simulation on it).
func (j *job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.Status != "queued" {
		return false
	}
	j.Status = "running"
	return true
}

// finish moves the job to its terminal state and closes done. It is
// idempotent: the first terminal transition wins, so a worker completing
// a job the drain-abort path already failed is a no-op (never a double
// close or a resurrected status). Reports whether this call transitioned.
func (j *job) finish(out *runOutput, err error) bool {
	j.mu.Lock()
	if j.Status == "done" || j.Status == "failed" {
		j.mu.Unlock()
		return false
	}
	if err != nil {
		j.Status = "failed"
		j.Error = err.Error()
	} else {
		j.Status = "done"
		j.Result = out
	}
	j.mu.Unlock()
	close(j.done)
	return true
}

type serverOptions struct {
	queueDepth int           // bounded async queue; 503 when full
	workers    int           // async queue drainers
	runTimeout time.Duration // per-run deadline (sync and async)
	pprof      bool          // mount net/http/pprof under /debug/pprof/

	// registry backs /metrics; newServer creates one when nil. Tests
	// inject their own to read instruments directly.
	registry *obs.Registry

	// store, when non-nil, receives every fresh completed run (keyed by
	// commit) and backs GET /runs and GET /query. The server does not own
	// it — the caller opens and closes it.
	store *store.Store
	// commit attributes persisted runs to the producing build
	// (buildinfo.Commit() in production; tests pin a constant).
	commit string

	// holdJobs, when non-nil, blocks each worker after dequeuing until the
	// channel closes. Test-only: it freezes the pool so queue-bound
	// behaviour is observable without timing races.
	holdJobs chan struct{}

	// coordinator enables cluster-coordinator mode: /cluster/* membership
	// endpoints, /grid sharded dispatch, and remote execution of runs
	// whenever live workers exist (local simulation is the fallback).
	// liveness bounds how long a silent worker keeps owning shards
	// (default 6s); vnodes tunes ring granularity.
	coordinator bool
	liveness    time.Duration
	vnodes      int

	// nodeID, when non-empty, names this process in the fleet and becomes
	// the node="..." const label on every metrics series it exports.
	nodeID string

	// spans backs GET /trace; newServer creates one (capacity
	// span.DefaultCapacity, node-stamped) unless spansOff disables
	// recording entirely — the nil recorder keeps every instrumented
	// path allocation-free. Tests inject their own to read spans
	// directly.
	spans    *span.Recorder
	spansOff bool

	// logger receives the access log and lifecycle messages; nil means
	// quiet (olog.Nop), which tests rely on. cmd/edbpd main wires the
	// real one from -log-level / -log-format.
	logger *olog.Logger
}

// server is the edbpd HTTP service. newServer starts the worker pool;
// Drain stops intake and waits for queued jobs, making the server a pure
// function of its handlers in tests (httptest.NewServer(srv.Handler())).
type server struct {
	opts  serverOptions
	mux   *http.ServeMux
	jobs  sync.Map // id -> *job
	cache sync.Map // request hash -> *runOutput (completed runs only)

	queueMu  sync.RWMutex // guards queue against close-during-send
	queue    chan *job
	draining atomic.Bool
	workerWG sync.WaitGroup
	nextID   atomic.Uint64

	// reg backs /metrics (Prometheus text and JSON snapshot); met is the
	// pre-resolved instrument set over it (nil = observation disabled).
	reg *obs.Registry
	met *serverMetrics

	// lastLive points at the most recently started run's live view; the
	// SSE stream falls back to it when no job id is given.
	lastLive atomic.Pointer[liveRun]

	// spans records service spans for GET /trace (nil = disabled);
	// log is never nil (olog.Nop when unconfigured).
	spans *span.Recorder
	log   *olog.Logger

	// Coordinator-mode state (nil in single-node and worker modes).
	members  *cluster.Membership
	coord    *cluster.Coordinator
	cmet     *clusterMetrics
	grids    sync.Map // grid id -> *gridRecord
	nextGrid atomic.Uint64
	scrapes  sync.Map // node id -> *scrapeCacheEntry (metrics federation)
}

func newServer(opts serverOptions) *server {
	if opts.queueDepth <= 0 {
		opts.queueDepth = 64
	}
	if opts.workers <= 0 {
		opts.workers = 2
	}
	if opts.runTimeout <= 0 {
		opts.runTimeout = 15 * time.Minute
	}
	if opts.registry == nil {
		opts.registry = obs.NewRegistry()
	}
	if opts.nodeID != "" {
		opts.registry.SetConstLabels("node", opts.nodeID)
	}
	s := &server{opts: opts, queue: make(chan *job, opts.queueDepth)}
	s.reg = opts.registry
	s.met = newServerMetrics(s.reg)
	obs.RegisterRuntime(s.reg)
	s.spans = opts.spans
	if s.spans == nil && !opts.spansOff {
		s.spans = span.NewRecorder(opts.nodeID, span.DefaultCapacity)
	}
	if s.spans != nil {
		s.reg.GaugeFunc("edbpd_spans_recorded_total", "Service spans finished by this node's recorder.",
			func() float64 { f, _ := s.spans.Stats(); return float64(f) })
		s.reg.GaugeFunc("edbpd_spans_dropped_total", "Service spans lost to span-ring overwrite.",
			func() float64 { _, d := s.spans.Stats(); return float64(d) })
	}
	s.log = opts.logger
	if s.log == nil {
		s.log = olog.Nop()
	}
	// Depth of the bounded channel itself (distinct from the queued-jobs
	// gauge only transiently, but free and impossible to drift).
	s.reg.GaugeFunc("edbpd_queue_depth", "Async jobs currently in the bounded queue channel.",
		func() float64 { return float64(len(s.queue)) })
	if opts.store != nil {
		s.reg.GaugeFunc("edbpd_store_records", "Result records in the experiment store (superseded included).",
			func() float64 { return float64(opts.store.Len()) })
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /stream", s.handleStream)
	s.mux.HandleFunc("GET /runs", s.handleRuns)
	s.mux.HandleFunc("GET /query", s.handleQuery)
	s.mux.HandleFunc("GET /trace", s.handleTrace)
	if opts.coordinator {
		s.initCluster()
	}
	if opts.pprof {
		// Gated behind -pprof: profiling endpoints expose execution
		// details and cost CPU, so production deployments opt in.
		s.mux.HandleFunc("GET /debug/pprof/", httppprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", httppprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", httppprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", httppprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", httppprof.Trace)
	}
	for i := 0; i < opts.workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler: the route mux behind the
// observability middleware (request counter, server span per request,
// access log with centralized 5xx error lines).
func (s *server) Handler() http.Handler {
	return s.withObservability(s.mux)
}

// errDrainAborted is the typed reason stamped on jobs the drain gave up
// waiting for: /jobs/{id} must never report a phantom in-flight job after
// the server has shut down.
var errDrainAborted = errors.New("edbpd: drain aborted before this job completed")

// Drain stops accepting work, waits for queued jobs to finish (bounded by
// ctx), and releases the worker pool. /healthz reports 503 from the first
// moment so load balancers stop routing. If ctx expires first, every job
// still queued or running is marked failed with errDrainAborted.
func (s *server) Drain(ctx context.Context) error {
	s.queueMu.Lock()
	if !s.draining.Swap(true) {
		close(s.queue)
	}
	s.queueMu.Unlock()

	done := make(chan struct{})
	go func() { s.workerWG.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		n := s.failPendingJobs(errDrainAborted)
		return fmt.Errorf("edbpd: drain aborted with %d jobs still pending: %w", n, ctx.Err())
	}
}

// failPendingJobs force-fails every non-terminal job with reason. Workers
// racing a job to completion lose harmlessly: job.finish is idempotent.
func (s *server) failPendingJobs(reason error) int {
	n := 0
	s.jobs.Range(func(_, v any) bool {
		if v.(*job).finish(nil, reason) {
			n++
		}
		return true
	})
	return n
}

func (s *server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		if s.opts.holdJobs != nil {
			<-s.opts.holdJobs
		}
		if s.met != nil {
			s.met.jobsQueued.Dec()
		}
		if !j.start() {
			// Already terminal: a drain abort failed it while queued.
			continue
		}
		if s.met != nil {
			s.met.jobsRunning.Inc()
			s.met.queueWait.Observe(time.Since(j.enqueuedAt).Seconds())
		}
		// The queue-wait span is materialized at dequeue, backdated to
		// the enqueue instant, so it costs nothing while the job sits.
		if qs := s.spans.StartAt(j.parent, "queue-wait", j.enqueuedAt); qs != nil {
			qs.Attr("job", j.ID)
			qs.End()
		}
		// Async jobs run to completion even during drain; only the
		// per-run deadline bounds them.
		ctx, cancel := context.WithTimeout(context.Background(), s.opts.runTimeout)
		if j.parent.Valid() {
			ctx = span.With(ctx, j.parent)
		}
		out, err := s.run(ctx, j.req, j)
		cancel()
		j.finish(out, err)
		if err != nil {
			s.log.Warn("job failed", "job_id", j.ID, "trace_id", traceIDString(j.parent), "err", err.Error())
		}
		if s.met != nil {
			s.met.jobsRunning.Dec()
		}
	}
}

// run executes one simulation, consulting and feeding the config-hash
// result cache. Cached replays skip the simulator entirely; fresh runs
// additionally reuse the process-wide workload.Cached / energy.CachedTrace
// memoization underneath sim.RunContext. j, when non-nil, is the async job
// this run belongs to: its live view is published for GET /stream.
func (s *server) run(ctx context.Context, req runRequest, j *job) (out *runOutput, err error) {
	key := req.hash()
	rs := s.spans.Start(span.FromCtx(ctx), "run")
	if rs != nil {
		rs.Attr("app", req.App).Attr("scheme", req.Scheme).Attr("key", key[:12])
		ctx = span.With(ctx, rs.Ctx())
		defer func() {
			rs.Fail(err)
			rs.End()
		}()
	}

	cs := s.spans.Start(rs.Ctx(), "cache-lookup")
	v, hitOK := s.cache.Load(key)
	if cs != nil {
		cs.Attr("hit", strconv.FormatBool(hitOK))
		cs.End()
	}
	if hitOK {
		s.met.observeCache(true)
		hit := *v.(*runOutput)
		hit.CacheHit = true
		return &hit, nil
	}
	s.met.observeCache(false)
	if out, handled, err := s.dispatch(ctx, key, req); handled {
		if err != nil {
			return nil, err
		}
		s.cache.Store(key, out)
		return out, nil
	}
	cfg, err := req.config()
	if err != nil {
		return nil, err
	}
	rec := tracepkg.NewRecorder(tracepkg.Options{
		Label:    fmt.Sprintf("%s/%s/%s", req.App, cfg.Scheme, cfg.TraceKind),
		EventCap: 4096,
		// The rings keep a bounded recent window (overwrites are counted
		// into edbpd_trace_dropped_total); the dense cadence feeds the
		// live gauge that GET /stream serves.
		SampleCap:   256,
		SampleEvery: 1e-3,
	})
	cfg.Recorder = rec
	lr := &liveRun{label: rec.Options().Label, rec: rec, done: make(chan struct{})}
	defer close(lr.done)
	s.lastLive.Store(lr)
	if j != nil {
		j.live.Store(lr)
	}
	start := time.Now()
	ss := s.spans.Start(rs.Ctx(), "simulate")
	res, err := sim.RunContext(ctx, cfg)
	if ss != nil {
		ss.Fail(err)
		ss.End()
	}
	if err != nil {
		s.met.observeRunError()
		return nil, err
	}
	s.met.observeRun(req.App, cfg.Scheme.String(), res, time.Since(start).Seconds())
	s.persist(rs.Ctx(), cfg, res)
	out = output(req, res)
	s.cache.Store(key, out)
	return out, nil
}

// persist appends a fresh completed run to the experiment store (when one
// is configured), keyed by its config hash and the server's commit. A
// store failure never fails the request — the result is still correct —
// but it is counted, so a wedged store is visible in /metrics.
func (s *server) persist(parent span.Context, cfg sim.Config, res *sim.Result) {
	if s.opts.store == nil {
		return
	}
	start := time.Now()
	ps := s.spans.Start(parent, "store-append")
	err := s.opts.store.PutResult(store.KeyFor(cfg, s.opts.commit), res, time.Now().Unix())
	if ps != nil {
		ps.Fail(err)
		ps.End()
	}
	s.met.observeStoreAppend(err == nil, time.Since(start).Seconds())
}

// traceIDString renders a span context's trace for log correlation; the
// empty string when tracing is off.
func traceIDString(c span.Context) string {
	if c.Trace.IsZero() {
		return ""
	}
	return c.Trace.String()
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// drainRetryAfterSeconds is the Retry-After clients get while the server
// drains: long enough for a rolling restart to converge, short enough
// that retrying clients land on the replacement promptly.
const drainRetryAfterSeconds = 5

// httpUnavailable is a 503 with an explicit Retry-After, so intake
// rejection during drain (or a momentarily full queue) is a deterministic,
// machine-actionable backpressure signal instead of a bare error.
func httpUnavailable(w http.ResponseWriter, retryAfterSeconds int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	httpError(w, http.StatusServiceUnavailable, format, args...)
}

// Typed intake-rejection reasons for tryEnqueue.
var (
	errDraining  = errors.New("draining")
	errQueueFull = errors.New("queue full")
)

// tryEnqueue places j in the bounded queue, or reports why it cannot. The
// draining check and the channel send happen under the same read lock
// Drain write-locks before closing the queue, so a submission racing the
// drain flip either lands before the close (and will be finished by the
// pool) or observes errDraining — it can never send on a closed channel
// or be misreported as a full-queue rejection.
func (s *server) tryEnqueue(j *job) error {
	s.queueMu.RLock()
	defer s.queueMu.RUnlock()
	if s.draining.Load() {
		return errDraining
	}
	select {
	case s.queue <- j:
		s.jobs.Store(j.ID, j)
		if s.met != nil {
			s.met.jobsQueued.Inc()
		}
		return nil
	default:
		return errQueueFull
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleRun serves POST /run. The default is synchronous: the simulation
// runs under the request's context plus the per-run timeout and the Result
// JSON is the response. With ?async=1 the job enters the bounded queue and
// the response is 202 with the job id for GET /jobs/{id}.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpUnavailable(w, drainRetryAfterSeconds, "draining")
		return
	}
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req = req.normalize()
	if _, err := req.config(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if r.URL.Query().Get("async") != "" {
		j := &job{
			ID:         fmt.Sprintf("job-%d", s.nextID.Add(1)),
			Status:     "queued",
			req:        req,
			done:       make(chan struct{}),
			enqueuedAt: time.Now(),
			parent:     span.FromCtx(r.Context()),
		}
		switch err := s.tryEnqueue(j); {
		case err == nil:
			writeJSON(w, http.StatusAccepted, j.snapshot())
		case errors.Is(err, errDraining):
			httpUnavailable(w, drainRetryAfterSeconds, "draining")
		default:
			if s.met != nil {
				s.met.queueFull.Inc()
			}
			httpUnavailable(w, 1, "queue full (%d deep)", s.opts.queueDepth)
		}
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.runTimeout)
	defer cancel()
	out, err := s.run(ctx, req, nil)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		}
		httpError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// validJobID reports whether id has the shape handleRun issues ("job-" + a
// positive decimal). Anything else is a client-side construction error, not
// a job that might exist later.
func validJobID(id string) bool {
	num, ok := strings.CutPrefix(id, "job-")
	if !ok || num == "" || num[0] == '0' {
		return false
	}
	for _, r := range num {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// 400 for an id this server could never have issued, 404 for a
	// well-formed id it simply doesn't know — clients retrying a 404 might
	// be early; retrying a 400 is pointless.
	if !validJobID(id) {
		httpError(w, http.StatusBadRequest, "malformed job id %q (want job-<n>)", id)
		return
	}
	v, ok := s.jobs.Load(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, v.(*job).snapshot())
}

// storedRun is one GET /runs response item.
type storedRun struct {
	Key    store.Key   `json:"key"`
	Time   int64       `json:"unix_time"`
	Result *sim.Result `json:"result"`
}

// handleRuns serves GET /runs from the experiment store. Query params
// app, scheme, seed, commit and config_hash (prefix allowed) filter;
// limit caps; latest=1 keeps only each key's newest record. With
// format=raw (config_hash required) the response is the stored
// sim.EncodeResult envelope byte for byte — the CI smoke job asserts the
// exact round trip against it.
func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if s.opts.store == nil {
		httpError(w, http.StatusNotFound, "no experiment store configured (start edbpd with -store)")
		return
	}
	q := r.URL.Query()
	f := store.Filter{
		App:        q.Get("app"),
		Scheme:     q.Get("scheme"),
		Commit:     q.Get("commit"),
		ConfigHash: q.Get("config_hash"),
		LatestOnly: q.Get("latest") != "",
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad seed %q", v)
			return
		}
		f.Seed = &seed
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		f.Limit = n
	}

	if q.Get("format") == "raw" {
		if f.ConfigHash == "" {
			httpError(w, http.StatusBadRequest, "format=raw needs config_hash")
			return
		}
		raw, _, ok, err := s.opts.store.RawByHash(f.ConfigHash)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if !ok {
			httpError(w, http.StatusNotFound, "no stored run for config hash %q", f.ConfigHash)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
		return
	}

	runs, err := s.opts.store.Select(f)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := make([]storedRun, 0, len(runs))
	for _, run := range runs {
		out = append(out, storedRun{Key: run.Key, Time: run.Time, Result: run.Result})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleQuery serves GET /query?q=<statement> over the experiment store's
// SELECT grammar (see internal/store.ParseQuery). The default response is
// the result table as JSON; format=text renders the same table as the
// plain text cmd/experiments emits.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.opts.store == nil {
		httpError(w, http.StatusNotFound, "no experiment store configured (start edbpd with -store)")
		return
	}
	stmt := r.URL.Query().Get("q")
	if stmt == "" {
		httpError(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	parsed, err := store.ParseQuery(stmt)
	if err != nil {
		s.met.observeStoreQuery(false)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	table, err := s.opts.store.Execute(r.Context(), parsed)
	if err != nil {
		s.met.observeStoreQuery(false)
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.met.observeStoreQuery(true)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		table.Print(w)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": table.ID, "title": table.Title,
		"header": table.Header, "rows": table.Rows, "notes": table.Notes,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpUnavailable(w, drainRetryAfterSeconds, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics emits the obs.Registry: Prometheus text exposition
// (format 0.0.4, # HELP/# TYPE on every family) by default, or the JSON
// snapshot with ?format=json.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		s.reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	s.reg.WritePrometheus(w)
}

// gaugeFrame is the SSE data payload for one sampled gauge observation:
// the Figure-4 quantities of an in-flight run.
type gaugeFrame struct {
	Label       string  `json:"label,omitempty"`
	Seq         uint64  `json:"seq"`   // publication ordinal within the run
	SimS        float64 `json:"t_s"`   // simulated seconds
	Cycle       int32   `json:"cycle"` // power-cycle index
	VoltageV    float64 `json:"voltage_v"`
	StoredUJ    float64 `json:"stored_uj"`
	Live        int32   `json:"live"`
	Gated       int32   `json:"gated"`
	Dirty       int32   `json:"dirty"`
	Level       int32   `json:"level"`
	FPR         float64 `json:"fpr"`
	ZombieRatio float64 `json:"zombie_ratio"`
}

// handleStream serves GET /stream: a Server-Sent Events feed of sampled
// gauges (capacitor voltage and stored energy, live/gated/dirty block
// counts, EDBP level, FPR, zombie ratio) read from an in-flight run's
// trace.Recorder via its race-safe live gauge. ?job=<id> follows a
// specific async job (waiting for it to start); without it the most
// recently started run is streamed. ?interval_ms tunes the poll cadence
// (default 100). Each new sample is one "gauge" event; a final "done"
// event closes the stream when the run finishes.
func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	interval := 100 * time.Millisecond
	if v := r.URL.Query().Get("interval_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 1 {
			httpError(w, http.StatusBadRequest, "bad interval_ms %q", v)
			return
		}
		interval = time.Duration(ms) * time.Millisecond
	}

	var lr *liveRun
	if id := r.URL.Query().Get("job"); id != "" {
		v, ok := s.jobs.Load(id)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job %q", id)
			return
		}
		j := v.(*job)
		// Wait for the worker to attach a live run. A job that finishes
		// without one (cache hit, config error) yields an empty stream.
		wait := time.NewTicker(time.Millisecond)
		for lr = j.live.Load(); lr == nil; lr = j.live.Load() {
			select {
			case <-r.Context().Done():
				wait.Stop()
				return
			case <-j.done:
				lr = j.live.Load()
			case <-wait.C:
				continue
			}
			break
		}
		wait.Stop()
	} else {
		lr = s.lastLive.Load()
		if lr == nil {
			httpError(w, http.StatusNotFound, "no run in flight — start one with POST /run")
			return
		}
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	var frames <-chan gaugeFrame
	if lr != nil {
		// lr.done closes when the simulation returns (strictly before the
		// job's own done), so it is the tighter signal for both paths.
		frames = sampleRun(r.Context(), lr, interval, lr.done)
	} else {
		// The job finished without ever attaching a live run (cache hit or
		// config error): serve an empty stream that closes immediately.
		closed := make(chan gaugeFrame)
		close(closed)
		frames = closed
	}
	for frame := range frames {
		data, err := json.Marshal(frame)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "event: gauge\ndata: %s\n\n", data)
		fl.Flush()
	}
	// frames closed: the run finished, or the client went away. Only a
	// finished run earns the terminal event — writing to a gone client is
	// pointless (and the write would just error into the void).
	if r.Context().Err() == nil {
		io.WriteString(w, "event: done\ndata: {}\n\n")
		fl.Flush()
	}
}

// sampleRun polls lr's race-safe live gauge every interval on a dedicated
// goroutine and delivers each fresh sample on the returned channel. The
// goroutine is bound to BOTH ctx and runDone: when the client disconnects
// mid-run, ctx cancellation tears it down even though the run is still
// going (the unbuffered send also selects on ctx, so a reader that left
// between frames cannot wedge it); when the run finishes first, it flushes
// the final sample (short runs may complete between ticks) and closes the
// channel. Either way the goroutine exits — an aborted stream never leaks
// its sampler.
func sampleRun(ctx context.Context, lr *liveRun, interval time.Duration, runDone <-chan struct{}) <-chan gaugeFrame {
	frames := make(chan gaugeFrame)
	go func() {
		defer close(frames)
		var lastSeq uint64
		emit := func() bool {
			sample, seq := lr.rec.LatestSample()
			if seq == 0 || seq == lastSeq {
				return true
			}
			lastSeq = seq
			frame := gaugeFrame{
				Label: lr.label, Seq: seq, SimS: sample.Time, Cycle: sample.Cycle,
				VoltageV: sample.Voltage, StoredUJ: sample.Stored * 1e6,
				Live: sample.Live, Gated: sample.Gated, Dirty: sample.Dirty,
				Level: sample.Level, FPR: sample.FPR, ZombieRatio: sample.ZombieRatio,
			}
			select {
			case frames <- frame:
				return true
			case <-ctx.Done():
				return false
			}
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-runDone:
				emit()
				return
			case <-tick.C:
				if !emit() {
					return
				}
			}
		}
	}()
	return frames
}
