package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"edbp/internal/cache"
	"edbp/internal/energy"
	"edbp/internal/nvm"
	"edbp/internal/sim"
	tracepkg "edbp/internal/trace"
)

// runRequest is the POST /run body. Zero-valued fields select the paper's
// Table II defaults, mirroring cmd/edbpsim's flags.
type runRequest struct {
	App    string  `json:"app"`
	Scheme string  `json:"scheme"`
	Trace  string  `json:"trace,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`

	CacheBytes int     `json:"cache_bytes,omitempty"`
	CacheWays  int     `json:"cache_ways,omitempty"`
	Policy     string  `json:"policy,omitempty"`
	NVM        string  `json:"nvm,omitempty"`
	MemMB      int64   `json:"mem_mb,omitempty"`
	CapUF      float64 `json:"cap_uf,omitempty"`

	ICacheSRAM    bool `json:"icache_sram,omitempty"`
	PredictICache bool `json:"predict_icache,omitempty"`
	Leak80Off     bool `json:"leak80off,omitempty"`
}

// normalize fills defaults so equivalent requests hash identically.
func (r runRequest) normalize() runRequest {
	if r.Scheme == "" {
		r.Scheme = "edbp"
	}
	r.Scheme = strings.ToLower(r.Scheme)
	if r.Trace == "" {
		r.Trace = "RFHome"
	}
	if r.Scale == 0 {
		r.Scale = 1.0
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.CacheBytes == 0 {
		r.CacheBytes = 4096
	}
	if r.CacheWays == 0 {
		r.CacheWays = 4
	}
	if r.Policy == "" {
		r.Policy = "LRU"
	}
	if r.NVM == "" {
		r.NVM = "ReRAM"
	}
	if r.MemMB == 0 {
		r.MemMB = 16
	}
	if r.CapUF == 0 {
		r.CapUF = 0.47
	}
	return r
}

// hash keys the result cache: sha256 over the canonical (normalized) JSON
// encoding of the request.
func (r runRequest) hash() string {
	b, _ := json.Marshal(r)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// config translates the request into a sim.Config.
func (r runRequest) config() (sim.Config, error) {
	if r.App == "" {
		return sim.Config{}, fmt.Errorf("missing required field %q", "app")
	}
	sch, err := parseScheme(r.Scheme)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Default(r.App, sch)
	cfg.Scale = r.Scale
	cfg.SourceSeed = r.Seed
	cfg.DCacheBytes = r.CacheBytes
	cfg.DCacheWays = r.CacheWays
	cfg.MemBytes = r.MemMB << 20
	cfg.Capacitor.Capacitance = r.CapUF * 1e-6
	cfg.ICacheSRAM = r.ICacheSRAM
	cfg.PredictICache = r.PredictICache
	if r.Leak80Off {
		cfg.DCacheLeakFactor = 0.2
	}
	if cfg.TraceKind, err = energy.ParseTraceKind(r.Trace); err != nil {
		return sim.Config{}, err
	}
	if cfg.DCachePolicy, err = cache.ParsePolicy(r.Policy); err != nil {
		return sim.Config{}, err
	}
	if cfg.MemTech, err = nvm.ParseTech(r.NVM); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}

func parseScheme(s string) (sim.Scheme, error) {
	switch strings.ToLower(s) {
	case "baseline", "nvsramcache", "none":
		return sim.Baseline, nil
	case "sdbp":
		return sim.SDBP, nil
	case "decay", "cachedecay":
		return sim.Decay, nil
	case "amc":
		return sim.AMC, nil
	case "edbp":
		return sim.EDBP, nil
	case "decay+edbp", "combined":
		return sim.DecayEDBP, nil
	case "amc+edbp":
		return sim.AMCEDBP, nil
	case "counting":
		return sim.Counting, nil
	case "reftrace":
		return sim.RefTrace, nil
	case "counting+edbp":
		return sim.CountingEDBP, nil
	case "reftrace+edbp":
		return sim.RefTraceEDBP, nil
	case "ideal":
		return sim.Ideal, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", s)
	}
}

// runOutput is the Result JSON returned by POST /run and GET /jobs/{id}.
// Field names are stable; cmd/edbpsim -json uses the same vocabulary.
type runOutput struct {
	App    string `json:"app"`
	Scheme string `json:"scheme"`
	Trace  string `json:"trace"`

	WallSeconds   float64 `json:"wall_seconds"`
	ActiveSeconds float64 `json:"active_seconds"`
	OffSeconds    float64 `json:"off_seconds"`
	Instructions  uint64  `json:"instructions"`

	PowerCycles int `json:"power_cycles"`
	Checkpoints int `json:"checkpoints"`
	Outages     int `json:"outages"`

	DCacheMissRate float64 `json:"dcache_miss_rate"`
	ICacheMissRate float64 `json:"icache_miss_rate"`

	EnergyTotalJ      float64 `json:"energy_total_j"`
	EnergyDCacheJ     float64 `json:"energy_dcache_j"`
	EnergyICacheJ     float64 `json:"energy_icache_j"`
	EnergyMemoryJ     float64 `json:"energy_memory_j"`
	EnergyCheckpointJ float64 `json:"energy_checkpoint_j"`

	Coverage float64 `json:"coverage"`
	Accuracy float64 `json:"accuracy"`

	Truncated bool `json:"truncated"`
	CacheHit  bool `json:"cache_hit"`
}

func output(req runRequest, res *sim.Result) *runOutput {
	e := res.Energy
	return &runOutput{
		App:            res.Config.App,
		Scheme:         res.Config.Scheme.String(),
		Trace:          res.Config.TraceKind.String(),
		WallSeconds:    res.WallTime,
		ActiveSeconds:  res.ActiveTime,
		OffSeconds:     res.OffTime,
		Instructions:   res.Instructions,
		PowerCycles:    res.PowerCycles,
		Checkpoints:    res.Checkpoints,
		Outages:        res.Outages,
		DCacheMissRate: res.DCacheStats.MissRate(),
		ICacheMissRate: res.ICacheStats.MissRate(),

		EnergyTotalJ:      e.Total(),
		EnergyDCacheJ:     e.DCache(),
		EnergyICacheJ:     e.ICache(),
		EnergyMemoryJ:     e.Memory,
		EnergyCheckpointJ: e.Checkpoint,

		Coverage:  res.Prediction.Coverage(),
		Accuracy:  res.Prediction.Accuracy(),
		Truncated: res.Truncated,
	}
}

// job tracks one async run through the bounded queue.
type job struct {
	ID     string     `json:"id"`
	Status string     `json:"status"` // queued | running | done | failed
	Result *runOutput `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
	req    runRequest
	mu     sync.Mutex
	done   chan struct{}
}

func (j *job) snapshot() job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return job{ID: j.ID, Status: j.Status, Result: j.Result, Error: j.Error}
}

func (j *job) finish(out *runOutput, err error) {
	j.mu.Lock()
	if err != nil {
		j.Status = "failed"
		j.Error = err.Error()
	} else {
		j.Status = "done"
		j.Result = out
	}
	j.mu.Unlock()
	close(j.done)
}

type serverOptions struct {
	queueDepth int           // bounded async queue; 503 when full
	workers    int           // async queue drainers
	runTimeout time.Duration // per-run deadline (sync and async)

	// holdJobs, when non-nil, blocks each worker after dequeuing until the
	// channel closes. Test-only: it freezes the pool so queue-bound
	// behaviour is observable without timing races.
	holdJobs chan struct{}
}

// server is the edbpd HTTP service. newServer starts the worker pool;
// Drain stops intake and waits for queued jobs, making the server a pure
// function of its handlers in tests (httptest.NewServer(srv.Handler())).
type server struct {
	opts  serverOptions
	mux   *http.ServeMux
	jobs  sync.Map // id -> *job
	cache sync.Map // request hash -> *runOutput (completed runs only)

	queueMu  sync.RWMutex // guards queue against close-during-send
	queue    chan *job
	draining atomic.Bool
	workerWG sync.WaitGroup
	nextID   atomic.Uint64

	// metrics, exposed in Prometheus text format at /metrics.
	mRequests        atomic.Uint64
	mRunsOK          atomic.Uint64
	mRunsErr         atomic.Uint64
	mCacheHits       atomic.Uint64
	mQueueFull       atomic.Uint64
	mJobsQueued      atomic.Int64
	mJobsRunning     atomic.Int64
	mSimSecondsMicro atomic.Uint64                     // simulated wall-seconds ×1e6
	mTraceEvents     [tracepkg.KindCount]atomic.Uint64 // internal/trace gauge aggregate
}

func newServer(opts serverOptions) *server {
	if opts.queueDepth <= 0 {
		opts.queueDepth = 64
	}
	if opts.workers <= 0 {
		opts.workers = 2
	}
	if opts.runTimeout <= 0 {
		opts.runTimeout = 15 * time.Minute
	}
	s := &server{opts: opts, queue: make(chan *job, opts.queueDepth)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < opts.workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mRequests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// Drain stops accepting work, waits for queued jobs to finish (bounded by
// ctx), and releases the worker pool. /healthz reports 503 from the first
// moment so load balancers stop routing.
func (s *server) Drain(ctx context.Context) error {
	s.queueMu.Lock()
	if !s.draining.Swap(true) {
		close(s.queue)
	}
	s.queueMu.Unlock()

	done := make(chan struct{})
	go func() { s.workerWG.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("edbpd: drain aborted with jobs still running: %w", ctx.Err())
	}
}

func (s *server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		if s.opts.holdJobs != nil {
			<-s.opts.holdJobs
		}
		s.mJobsQueued.Add(-1)
		s.mJobsRunning.Add(1)
		j.mu.Lock()
		j.Status = "running"
		j.mu.Unlock()
		// Async jobs run to completion even during drain; only the
		// per-run deadline bounds them.
		ctx, cancel := context.WithTimeout(context.Background(), s.opts.runTimeout)
		out, err := s.run(ctx, j.req)
		cancel()
		j.finish(out, err)
		s.mJobsRunning.Add(-1)
	}
}

// run executes one simulation, consulting and feeding the config-hash
// result cache. Cached replays skip the simulator entirely; fresh runs
// additionally reuse the process-wide workload.Cached / energy.CachedTrace
// memoization underneath sim.RunContext.
func (s *server) run(ctx context.Context, req runRequest) (*runOutput, error) {
	key := req.hash()
	if v, ok := s.cache.Load(key); ok {
		s.mCacheHits.Add(1)
		hit := *v.(*runOutput)
		hit.CacheHit = true
		return &hit, nil
	}
	cfg, err := req.config()
	if err != nil {
		return nil, err
	}
	rec := tracepkg.NewRecorder(tracepkg.Options{
		Label:       fmt.Sprintf("%s/%s/%s", req.App, cfg.Scheme, cfg.TraceKind),
		EventCap:    4096,
		SampleCap:   64,
		SampleEvery: 1, // gauges are aggregated, not exported: sample sparsely
	})
	cfg.Recorder = rec
	res, err := sim.RunContext(ctx, cfg)
	if err != nil {
		s.mRunsErr.Add(1)
		return nil, err
	}
	if sum := rec.Summary(); sum != nil {
		for k, n := range sum.ByKind {
			s.mTraceEvents[k].Add(n)
		}
	}
	s.mRunsOK.Add(1)
	s.mSimSecondsMicro.Add(uint64(res.WallTime * 1e6))
	out := output(req, res)
	s.cache.Store(key, out)
	return out, nil
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleRun serves POST /run. The default is synchronous: the simulation
// runs under the request's context plus the per-run timeout and the Result
// JSON is the response. With ?async=1 the job enters the bounded queue and
// the response is 202 with the job id for GET /jobs/{id}.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req = req.normalize()
	if _, err := req.config(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if r.URL.Query().Get("async") != "" {
		j := &job{
			ID:     fmt.Sprintf("job-%d", s.nextID.Add(1)),
			Status: "queued",
			req:    req,
			done:   make(chan struct{}),
		}
		s.queueMu.RLock()
		defer s.queueMu.RUnlock()
		if s.draining.Load() {
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		select {
		case s.queue <- j:
			s.jobs.Store(j.ID, j)
			s.mJobsQueued.Add(1)
			writeJSON(w, http.StatusAccepted, j.snapshot())
		default:
			s.mQueueFull.Add(1)
			httpError(w, http.StatusServiceUnavailable, "queue full (%d deep)", s.opts.queueDepth)
		}
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.runTimeout)
	defer cancel()
	out, err := s.run(ctx, req)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		}
		httpError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	v, ok := s.jobs.Load(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, v.(*job).snapshot())
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics emits Prometheus text exposition: server counters plus the
// internal/trace event-kind aggregate across every completed run.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("edbpd_requests_total", "HTTP requests served.", s.mRequests.Load())
	counter("edbpd_runs_ok_total", "Simulations completed.", s.mRunsOK.Load())
	counter("edbpd_runs_error_total", "Simulations failed or canceled.", s.mRunsErr.Load())
	counter("edbpd_cache_hits_total", "Runs answered from the config-hash result cache.", s.mCacheHits.Load())
	counter("edbpd_queue_full_total", "Async submissions rejected for a full queue.", s.mQueueFull.Load())
	fmt.Fprintf(&b, "# HELP edbpd_jobs Jobs by state.\n# TYPE edbpd_jobs gauge\n")
	fmt.Fprintf(&b, "edbpd_jobs{state=\"queued\"} %d\n", s.mJobsQueued.Load())
	fmt.Fprintf(&b, "edbpd_jobs{state=\"running\"} %d\n", s.mJobsRunning.Load())
	fmt.Fprintf(&b, "# HELP edbpd_sim_seconds_total Simulated wall-clock seconds across completed runs.\n# TYPE edbpd_sim_seconds_total counter\n")
	fmt.Fprintf(&b, "edbpd_sim_seconds_total %.6f\n", float64(s.mSimSecondsMicro.Load())/1e6)
	fmt.Fprintf(&b, "# HELP edbpd_trace_events_total Simulator trace events by kind (internal/trace), summed over completed runs.\n# TYPE edbpd_trace_events_total counter\n")
	for k := 0; k < tracepkg.KindCount; k++ {
		fmt.Fprintf(&b, "edbpd_trace_events_total{kind=%q} %d\n", tracepkg.Kind(k).String(), s.mTraceEvents[k].Load())
	}
	w.Write([]byte(b.String()))
}
