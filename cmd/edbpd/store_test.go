package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"reflect"
	"strings"
	"testing"

	"edbp/internal/sim"
	"edbp/internal/store"
)

// TestJobIDResponseCodes pins the /jobs/{id} status-code contract:
// malformed ids (shapes this server never issues) are 400, well-formed but
// unknown ids are 404, live ids are 200.
func TestJobIDResponseCodes(t *testing.T) {
	_, ts := testServer(t, serverOptions{})

	var accepted jobView
	if code := doJSON(t, "POST", ts.URL+"/run?async=1", `{"app":"crc32","scheme":"edbp","scale":0.05}`, &accepted); code != http.StatusAccepted {
		t.Fatalf("POST /run?async=1 = %d, want 202", code)
	}

	for _, tc := range []struct {
		id   string
		want int
	}{
		{accepted.ID, http.StatusOK},
		{"job-999999", http.StatusNotFound},
		{"nope", http.StatusBadRequest},
		{"job-", http.StatusBadRequest},
		{"job-0", http.StatusBadRequest},
		{"job-12x", http.StatusBadRequest},
		{"job--1", http.StatusBadRequest},
		{"JOB-1", http.StatusBadRequest},
	} {
		t.Run(tc.id, func(t *testing.T) {
			if code := doJSON(t, "GET", ts.URL+"/jobs/"+url.PathEscape(tc.id), "", nil); code != tc.want {
				t.Errorf("GET /jobs/%s = %d, want %d", tc.id, code, tc.want)
			}
		})
	}
}

func storeServer(t *testing.T) (*server, *httptest2, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s, ts := testServer(t, serverOptions{store: st, commit: "testcommit12"})
	return s, &httptest2{URL: ts.URL}, st
}

// httptest2 narrows *httptest.Server to what these tests use, keeping the
// helper signature stable.
type httptest2 struct{ URL string }

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestStorePersistence proves edbpd -store end to end: a fresh run is
// appended (a cache hit is not), GET /runs serves it back, and
// GET /runs?format=raw returns the stored encoding byte for byte — twice.
func TestStorePersistence(t *testing.T) {
	s, ts, st := storeServer(t)

	var out runOutput
	if code := doJSON(t, "POST", ts.URL+"/run", `{"app":"crc32","scheme":"edbp","scale":0.05}`, &out); code != http.StatusOK {
		t.Fatalf("POST /run = %d", code)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d records after a fresh run, want 1", st.Len())
	}
	// The identical request is a cache hit: no second append.
	doJSON(t, "POST", ts.URL+"/run", `{"app":"crc32","scheme":"edbp","scale":0.05}`, &out)
	if st.Len() != 1 {
		t.Fatalf("cache hit appended to the store: %d records", st.Len())
	}
	if v := s.met.storeAppends.Value(); v != 1 {
		t.Fatalf("store append counter = %g, want 1", v)
	}

	code, body := get(t, ts.URL+"/runs")
	if code != http.StatusOK {
		t.Fatalf("GET /runs = %d: %s", code, body)
	}
	var runs []storedRun
	mustUnmarshal(t, body, &runs)
	if len(runs) != 1 {
		t.Fatalf("GET /runs returned %d runs, want 1", len(runs))
	}
	k := runs[0].Key
	if k.App != "crc32" || k.Scheme != "EDBP" || k.Commit != "testcommit12" || len(k.ConfigHash) != 64 {
		t.Fatalf("stored key %+v", k)
	}
	if runs[0].Result.WallTime != out.WallSeconds {
		t.Fatalf("stored wall %v, response wall %v", runs[0].Result.WallTime, out.WallSeconds)
	}

	// Byte-exact raw round trip, stable across reads.
	rawURL := ts.URL + "/runs?format=raw&config_hash=" + k.ConfigHash
	code, raw1 := get(t, rawURL)
	if code != http.StatusOK {
		t.Fatalf("raw fetch = %d: %s", code, raw1)
	}
	_, raw2 := get(t, rawURL)
	if string(raw1) != string(raw2) {
		t.Fatal("two raw fetches of the same run differ")
	}
	dec, err := sim.DecodeResult(raw1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, runs[0].Result) {
		t.Fatal("raw bytes decode to a different Result than GET /runs returned")
	}

	// Filters behave over HTTP as they do in-process.
	if code, body := get(t, ts.URL+"/runs?app=nosuch"); code != http.StatusOK || string(body) != "[]\n" {
		t.Fatalf("empty filter: %d %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/runs?seed=zzz"); code != http.StatusBadRequest {
		t.Fatalf("bad seed = %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/runs?format=raw"); code != http.StatusBadRequest {
		t.Fatalf("raw without config_hash = %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/runs?format=raw&config_hash=feedbeef"); code != http.StatusNotFound {
		t.Fatalf("raw for unknown hash = %d, want 404", code)
	}
}

// TestQueryEndpoint drives GET /query: JSON and text renderings, parse and
// execution failures, and the obs counters behind them.
func TestQueryEndpoint(t *testing.T) {
	s, ts, _ := storeServer(t)
	var out runOutput
	if code := doJSON(t, "POST", ts.URL+"/run", `{"app":"crc32","scheme":"edbp","scale":0.05}`, &out); code != http.StatusOK {
		t.Fatalf("POST /run = %d", code)
	}

	code, body := get(t, ts.URL+"/query?q="+url.QueryEscape("select agg wall_s"))
	if code != http.StatusOK {
		t.Fatalf("GET /query = %d: %s", code, body)
	}
	var table struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	mustUnmarshal(t, body, &table)
	if len(table.Rows) != 1 || table.Rows[0][0] != "EDBP" || table.Rows[0][1] != "1" {
		t.Fatalf("agg rows: %+v", table.Rows)
	}

	code, body = get(t, ts.URL+"/query?format=text&q="+url.QueryEscape("select schemes"))
	if code != http.StatusOK || !containsAll(string(body), "== schemes:", "EDBP") {
		t.Fatalf("text query: %d %q", code, body)
	}

	if code, _ := get(t, ts.URL+"/query"); code != http.StatusBadRequest {
		t.Fatalf("missing q = %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/query?q="+url.QueryEscape("select bogus")); code != http.StatusBadRequest {
		t.Fatalf("parse error = %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/query?q="+url.QueryEscape("select delta wall_s from aaa to bbb")); code != http.StatusUnprocessableEntity {
		t.Fatalf("execution error = %d, want 422", code)
	}
	if ok, bad := s.met.storeQueries.Value(), s.met.storeQueryErrors.Value(); ok != 2 || bad != 2 {
		t.Fatalf("query counters ok=%g bad=%g, want 2/2", ok, bad)
	}
}

// TestStoreEndpointsWithoutStore: /runs and /query are 404 when edbpd runs
// without -store.
func TestStoreEndpointsWithoutStore(t *testing.T) {
	_, ts := testServer(t, serverOptions{})
	if code := doJSON(t, "GET", ts.URL+"/runs", "", nil); code != http.StatusNotFound {
		t.Fatalf("GET /runs = %d, want 404", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/query?q=select+schemes", "", nil); code != http.StatusNotFound {
		t.Fatalf("GET /query = %d, want 404", code)
	}
}

func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("bad JSON %q: %v", data, err)
	}
}

func containsAll(s string, frags ...string) bool {
	for _, f := range frags {
		if !strings.Contains(s, f) {
			return false
		}
	}
	return true
}
