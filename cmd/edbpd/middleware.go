package main

import (
	"log/slog"
	"net/http"
	"time"

	"edbp/internal/span"
)

// statusWriter captures the response status for the access log while
// preserving the streaming surface the SSE handlers need: Flush is
// forwarded when the underlying writer supports it, and Unwrap keeps
// http.ResponseController working.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// withObservability wraps the mux with the service-wide request
// instrumentation: the request counter, a server span per request
// (minted fresh or continued from an incoming traceparent header, and
// echoed back on the response), and the access log. Every 5xx response
// — whichever handler produced it — emits exactly one structured error
// line carrying the trace ID, so a failing request is always
// correlatable across the fleet; healthy requests log at debug.
func (s *server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.met != nil {
			s.met.requests.Inc()
		}
		active, _ := span.ParseTraceparent(r.Header.Get(span.Header))
		sp := s.spans.Start(active, r.Method+" "+r.URL.Path)
		if sp != nil {
			sp.Attr("method", r.Method).Attr("path", r.URL.Path)
			active = sp.Ctx()
			w.Header().Set(span.Header, active.Traceparent())
			r = r.WithContext(span.With(r.Context(), active))
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if sp != nil {
			sp.Attr("status", httpStatusString(status))
			sp.End()
		}
		traceID := ""
		if !active.Trace.IsZero() {
			traceID = active.Trace.String()
		}
		if status >= 500 {
			s.log.Error("request failed",
				"method", r.Method, "path", r.URL.Path, "status", status,
				"trace_id", traceID, "dur", time.Since(start).Round(time.Microsecond))
			return
		}
		if s.log.Enabled(r.Context(), slog.LevelDebug) {
			s.log.Debug("request",
				"method", r.Method, "path", r.URL.Path, "status", status,
				"trace_id", traceID, "dur", time.Since(start).Round(time.Microsecond))
		}
	})
}

// httpStatusString formats small status codes without strconv garbage
// on the common path.
func httpStatusString(code int) string {
	switch code {
	case 200:
		return "200"
	case 202:
		return "202"
	case 400:
		return "400"
	case 404:
		return "404"
	case 503:
		return "503"
	}
	b := [3]byte{byte('0' + code/100%10), byte('0' + code/10%10), byte('0' + code%10)}
	return string(b[:])
}
