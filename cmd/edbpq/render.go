package main

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"

	"edbp/internal/experiments"
)

// renderBox draws an experiments.Table as a box-drawn grid:
//
//	┌────────┬───┐
//	│ scheme │ n │
//	├────────┼───┤
//	│ EDBP   │ 4 │
//	└────────┴───┘
//
// The title prints above the box, notes below. Width accounting is
// rune-based so the frame stays aligned around future non-ASCII cells.
func renderBox(w io.Writer, t *experiments.Table) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s: %s\n", t.ID, t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	body := t.Rows
	if len(body) == 0 && len(widths) > 0 {
		body = [][]string{{"(empty)"}}
	}
	for _, r := range body {
		for i, c := range r {
			if i < len(widths) && utf8.RuneCountInString(c) > widths[i] {
				widths[i] = utf8.RuneCountInString(c)
			}
		}
	}
	rule := func(left, mid, right string) {
		var b strings.Builder
		b.WriteString(left)
		for i, wd := range widths {
			if i > 0 {
				b.WriteString(mid)
			}
			b.WriteString(strings.Repeat("─", wd+2))
		}
		b.WriteString(right)
		fmt.Fprintln(w, b.String())
	}
	row := func(cells []string) {
		var b strings.Builder
		for i, wd := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteString("│ ")
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", wd-utf8.RuneCountInString(c)+1))
		}
		b.WriteString("│")
		fmt.Fprintln(w, b.String())
	}
	rule("┌", "┬", "┐")
	row(t.Header)
	rule("├", "┼", "┤")
	for _, r := range body {
		row(r)
	}
	rule("└", "┴", "┘")
	for _, n := range t.Notes {
		fmt.Fprintf(w, "%s\n", n)
	}
}
