package main

import (
	"bytes"
	"context"

	"strings"
	"testing"

	"edbp/internal/experiments"
	"edbp/internal/sim"
	"edbp/internal/store"
)

// fixture builds a small deterministic store: one NVSRAMCache run, two EDBP
// runs (seeds 1 and 2) and one WCET record.
func fixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	add := func(scheme sim.Scheme, seed uint64, wall float64) {
		cfg := sim.Default("crc32", scheme)
		cfg.SourceSeed = seed
		res := &sim.Result{Config: cfg, WallTime: wall, ActiveTime: wall, Outages: 2}
		if err := s.PutResult(store.KeyFor(cfg, "c1"), res, int64(seed)); err != nil {
			t.Fatal(err)
		}
	}
	add(sim.Baseline, 1, 10)
	add(sim.EDBP, 1, 5)
	add(sim.EDBP, 2, 7)
	if err := s.PutWCET(store.WCETRecord{App: "crc32", Env: "solar", Commit: "c1", Time: 9, Cases: 3, MaxObserved: 1.5, MaxBound: 2}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func runQ(t *testing.T, dir, q string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), strings.NewReader(""), &out, &errb, []string{"-store", dir, "-q", q})
	return out.String(), errb.String(), code
}

// TestAggGolden pins the box-table rendering byte for byte.
func TestAggGolden(t *testing.T) {
	out, _, code := runQ(t, fixture(t), "select agg wall_s")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	want := `agg wall_s: simulated end-to-end seconds (hibernation included) per scheme, mean ± 95% CI
┌─────────────┬───┬───────────┬──────────┬───────────┬───────────┐
│ scheme      │ n │ mean      │ ci95     │ min       │ max       │
├─────────────┼───┼───────────┼──────────┼───────────┼───────────┤
│ NVSRAMCache │ 1 │ 10.000000 │ 0.000000 │ 10.000000 │ 10.000000 │
│ EDBP        │ 2 │ 6.000000  │ 1.960000 │ 5.000000  │ 7.000000  │
└─────────────┴───┴───────────┴──────────┴───────────┴───────────┘
`
	if out != want {
		t.Fatalf("agg rendering changed:\n got:\n%s\nwant:\n%s", out, want)
	}
}

// TestWCETGolden covers the wcet table including the finite-bound column.
func TestWCETGolden(t *testing.T) {
	out, _, code := runQ(t, fixture(t), "select wcet")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	want := `wcet: worst-case completion-time bounds per (app, environment) class, oldest first
┌───────┬───────┬────────┬──────┬───────┬────────────────┬─────────────┬──────────┐
│ app   │ env   │ commit │ time │ cases │ max_observed_s │ max_bound_s │ exceeded │
├───────┼───────┼────────┼──────┼───────┼────────────────┼─────────────┼──────────┤
│ crc32 │ solar │ c1     │ 9    │ 3     │ 1.500          │ 2.000       │ 0        │
└───────┴───────┴────────┴──────┴───────┴────────────────┴─────────────┴──────────┘
1 record(s)
`
	if out != want {
		t.Fatalf("wcet rendering changed:\n got:\n%s\nwant:\n%s", out, want)
	}
}

func TestEmptyResultRendering(t *testing.T) {
	out, _, code := runQ(t, fixture(t), "select runs where app=nosuch")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "(empty)") || !strings.Contains(out, "0 run(s)") {
		t.Fatalf("empty select should render an (empty) box:\n%s", out)
	}
}

func TestOneShotErrors(t *testing.T) {
	dir := fixture(t)
	if _, errb, code := runQ(t, dir, "select bogus"); code != 1 || !strings.Contains(errb, "unknown query verb") {
		t.Fatalf("bad query: code=%d stderr=%q", code, errb)
	}
	var out, errb bytes.Buffer
	if code := run(context.Background(), strings.NewReader(""), &out, &errb, nil); code != 2 || !strings.Contains(errb.String(), "-store is required") {
		t.Fatalf("missing -store: code=%d stderr=%q", code, errb.String())
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), strings.NewReader(""), &out, &errb, []string{"-version"}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out.String(), "edbp edbpq commit ") {
		t.Fatalf("version stamp: %q", out.String())
	}
}

// TestREPL drives the interactive loop: help, a query, an error (which must
// not kill the session), quit.
func TestREPL(t *testing.T) {
	dir := fixture(t)
	in := strings.NewReader("help\nselect schemes\nselect bogus\nquit\n")
	var out, errb bytes.Buffer
	if code := run(context.Background(), in, &out, &errb, []string{"-store", dir}); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	s := out.String()
	if strings.Count(s, "edbpq> ") != 4 {
		t.Fatalf("want 4 prompts, got %d:\n%s", strings.Count(s, "edbpq> "), s)
	}
	for _, frag := range []string{"(3 runs)", "statements:", "EDBP", "NVSRAMCache", "error: store: unknown query verb"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("REPL transcript missing %q:\n%s", frag, s)
		}
	}
}

// TestFigureByteIdentity proves the CLI's "figure" command prints the exact
// bytes a live cmd/experiments run emits for the same table.
func TestFigureByteIdentity(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := experiments.Options{
		Apps: []string{"crc32", "sha"}, Scale: 0.02, Seeds: 1, Workers: 2,
		Persist: s.PersistHook("c1", func() int64 { return 1 }),
	}
	live, err := experiments.Figure8(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	live.Print(&want)

	out, errb, code := runQ(t, dir, "figure fig8 scale=0.02 seeds=1 apps=crc32,sha")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if out != want.String() {
		t.Fatalf("figure output differs from the live run\n got:\n%s\nwant:\n%s", out, want.String())
	}
}

func TestParseFigureErrors(t *testing.T) {
	for _, toks := range [][]string{
		{},
		{"fig8", "scale"},
		{"fig8", "scale=-1"},
		{"fig8", "seeds=0"},
		{"fig8", "seed=x"},
		{"fig8", "color=red"},
	} {
		if _, _, err := parseFigure(toks); err == nil {
			t.Errorf("parseFigure(%v): expected an error", toks)
		}
	}
	id, o, err := parseFigure([]string{"fig4", "scale=0.5", "seeds=2", "seed=9", "apps=crc32,sha"})
	if err != nil || id != "fig4" || o.Scale != 0.5 || o.Seeds != 2 || o.Seed != 9 || len(o.Apps) != 2 {
		t.Fatalf("parseFigure: id=%q o=%+v err=%v", id, o, err)
	}
}
