// Command edbpq queries the persistent experiment store: stored runs,
// per-scheme aggregates, cross-commit regression deltas, WCET trend records
// and full figure reconstruction, without re-running a single simulation.
//
// Usage:
//
//	edbpq -store runs.store -q "select agg wall_s where app=crc32"
//	edbpq -store runs.store -q "figure fig8 scale=0.02 seeds=1 apps=crc32,sha"
//	edbpq -store runs.store        # REPL; "help" lists the grammar
//
// Query results render as box tables; "figure" output is byte-identical to
// the live cmd/experiments rendering of the same table (see DESIGN.md §11).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"edbp/internal/buildinfo"
	"edbp/internal/experiments"
	"edbp/internal/obs/olog"
	"edbp/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Stdin, os.Stdout, os.Stderr, os.Args[1:]))
}

// run is main without the process plumbing, so tests can drive the full
// CLI — REPL included — and diff its output byte for byte.
func run(ctx context.Context, stdin io.Reader, stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("edbpq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir     = fs.String("store", "", "experiment store directory (required)")
		query   = fs.String("q", "", "one-shot query; without it edbpq reads a REPL from stdin")
		version = fs.Bool("version", false, "print the build stamp and exit")
	)
	lf := olog.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.Stamp("edbpq"))
		return 0
	}
	logger, err := olog.New(olog.Options{Component: "edbpq", Level: lf.Level, Format: lf.Format, W: stderr})
	if err != nil {
		fmt.Fprintf(stderr, "edbpq: %v\n", err)
		return 2
	}
	if *dir == "" {
		logger.Error("-store is required (the experiment store directory)")
		return 2
	}
	s, err := store.Open(*dir, store.Options{})
	if err != nil {
		logger.Error(err.Error())
		return 2
	}
	defer s.Close()

	if *query != "" {
		if err := execLine(ctx, s, *query, stdout); err != nil {
			logger.Error(err.Error())
			return 1
		}
		return 0
	}

	// REPL: one statement per line; errors report and continue.
	fmt.Fprintf(stdout, "edbpq — experiment store at %s (%d runs). \"help\" lists the grammar.\n", *dir, s.Len())
	sc := bufio.NewScanner(stdin)
	for {
		fmt.Fprint(stdout, "edbpq> ")
		if !sc.Scan() {
			fmt.Fprintln(stdout)
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "quit" || line == "exit":
			return 0
		case line == "help":
			printHelp(stdout)
			continue
		}
		if err := execLine(ctx, s, line, stdout); err != nil {
			fmt.Fprintf(stdout, "error: %v\n", err)
		}
		if ctx.Err() != nil {
			return 0
		}
	}
	return 0
}

func printHelp(w io.Writer) {
	fmt.Fprint(w, `statements:
  select runs  [where k=v [and k=v]…] [limit N]     list stored runs
  select agg <metric> [where …]                      mean ± 95% CI per scheme
  select delta <metric> from <commit> to <commit>    cross-commit diff with
         [where …] [threshold 0.10]                  regression flagging
  select wcet  [where …] [limit N]                   WCET bound trend records
  select apps | schemes | commits                    distinct key values
  figure <id> [scale=S] [seeds=N] [seed=K] [apps=a,b]
                                                     rebuild a figure from
                                                     stored runs (no sim)
where fields: app, scheme, seed, commit, hash, env
metrics:
`)
	for _, m := range store.Metrics {
		dir := "lower is better"
		if !m.LowerIsBetter {
			dir = "higher is better"
		}
		fmt.Fprintf(w, "  %-13s %s (%s)\n", m.Name, m.Help, dir)
	}
}

// execLine runs one statement. "figure …" reconstructs an experiment table
// from the store and prints it with experiments.Table.Print — the exact
// bytes a live cmd/experiments run emits; everything else goes through the
// query engine and the box renderer.
func execLine(ctx context.Context, s *store.Store, line string, w io.Writer) error {
	toks := strings.Fields(line)
	if len(toks) > 0 && strings.EqualFold(toks[0], "figure") {
		id, opts, err := parseFigure(toks[1:])
		if err != nil {
			return err
		}
		t, err := s.Reconstruct(ctx, id, opts)
		if err != nil {
			return err
		}
		t.Print(w)
		return nil
	}
	q, err := store.ParseQuery(line)
	if err != nil {
		return err
	}
	t, err := s.Execute(ctx, q)
	if err != nil {
		return err
	}
	renderBox(w, t)
	return nil
}

// parseFigure decodes "figure <id> [k=v]…" arguments.
func parseFigure(toks []string) (string, experiments.Options, error) {
	var o experiments.Options
	if len(toks) == 0 {
		return "", o, fmt.Errorf("figure needs an experiment id (e.g. \"figure fig8\")")
	}
	id := toks[0]
	for _, tok := range toks[1:] {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return "", o, fmt.Errorf("figure option %q is not key=value", tok)
		}
		switch strings.ToLower(k) {
		case "scale":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				return "", o, fmt.Errorf("bad scale %q", v)
			}
			o.Scale = f
		case "seeds":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return "", o, fmt.Errorf("bad seeds %q", v)
			}
			o.Seeds = n
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return "", o, fmt.Errorf("bad seed %q", v)
			}
			o.Seed = n
		case "apps":
			o.Apps = strings.Split(v, ",")
		default:
			return "", o, fmt.Errorf("unknown figure option %q (want scale, seeds, seed or apps)", k)
		}
	}
	return id, o, nil
}
