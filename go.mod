module edbp

go 1.22
