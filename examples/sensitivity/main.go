// Sensitivity: sweep the two deployment parameters the paper's
// Limitations section (VIII) calls out — capacitor size and harvesting
// environment — and watch EDBP's advantage shrink as energy becomes
// plentiful.
package main

import (
	"fmt"
	"log"

	"edbp"
)

func main() {
	const app = "adpcm_c"

	fmt.Println("== capacitor size (Figure 16) ==")
	fmt.Printf("%-10s %12s %12s %10s %8s\n", "capacitor", "outages", "EDBP speedup", "combined", "gain")
	for _, uf := range []float64{0.47, 4.7, 47, 100} {
		cfg := edbp.Config{App: app, CapacitorFarads: uf * 1e-6}
		rs, err := edbp.RunAll(cfg, edbp.Baseline, edbp.EDBP, edbp.CacheDecayEDBP)
		if err != nil {
			log.Fatal(err)
		}
		base, e, comb := rs[0], rs[1], rs[2]
		fmt.Printf("%7.2fµF %12d %12.3f %10.3f %+7.1f%%\n",
			uf, base.PowerCycles, e.SpeedupOver(base), comb.SpeedupOver(base),
			100*(e.SpeedupOver(base)-1))
	}
	fmt.Println("(bigger capacitor → fewer outages → fewer zombies → less for EDBP to do)")

	fmt.Println("\n== harvesting environment (Figure 15) ==")
	fmt.Printf("%-10s %12s %12s %10s\n", "trace", "outages", "EDBP speedup", "combined")
	for _, trace := range []string{"RFHome", "RFOffice", "Thermal", "Solar"} {
		cfg := edbp.Config{App: app, EnergyTrace: trace}
		rs, err := edbp.RunAll(cfg, edbp.Baseline, edbp.EDBP, edbp.CacheDecayEDBP)
		if err != nil {
			log.Fatal(err)
		}
		base, e, comb := rs[0], rs[1], rs[2]
		fmt.Printf("%-10s %12d %12.3f %10.3f\n",
			trace, base.PowerCycles, e.SpeedupOver(base), comb.SpeedupOver(base))
	}
	fmt.Println("(richer sources sustain execution; EDBP matters most where power fails often)")
}
