// Zombie: visualise the paper's motivating phenomenon (Figures 2–5).
//
// The example runs the baseline system, prints the power-failure timeline
// of the first few power cycles, then renders the Figure 4 zombie-ratio
// curve as an ASCII chart: as the capacitor voltage sinks toward the
// checkpoint threshold, a growing share of live cache blocks will never
// be used again before the outage — the "zombie blocks" EDBP hunts.
package main

import (
	"fmt"
	"log"
	"strings"

	"edbp"
)

func main() {
	r, err := edbp.Run(edbp.Config{
		App:           "susan",
		Scale:         1.0,
		EnergyTrace:   "RFHome",
		ZombieProfile: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("susan on RFHome: %d power failures over %.1f ms\n\n",
		r.Outages, r.WallSeconds*1e3)

	fmt.Println("first power cycles (outage timeline):")
	if r.OutageTimesTruncated {
		fmt.Printf("  (timeline capped: %d of %d failures recorded)\n",
			len(r.OutageTimes), r.Outages)
	}
	prev := 0.0
	for i, t := range r.OutageTimes {
		if i >= 8 {
			fmt.Printf("  ... %d more\n", len(r.OutageTimes)-8)
			break
		}
		fmt.Printf("  outage %2d at t=%8.3f ms (power cycle lasted %7.0f µs)\n",
			i+1, t*1e3, (t-prev)*1e6)
		prev = t
	}

	fmt.Println("\nzombie block ratio vs capacitor voltage (Figure 4):")
	var maxRatio float64
	for _, p := range r.ZombieProfile {
		if p.ZombieRatio > maxRatio {
			maxRatio = p.ZombieRatio
		}
	}
	if maxRatio == 0 {
		maxRatio = 1
	}
	for _, p := range r.ZombieProfile {
		bar := int(50 * p.ZombieRatio / maxRatio)
		fmt.Printf("  %.3f V %6.1f%% %s\n", p.Voltage, 100*p.ZombieRatio, strings.Repeat("█", bar))
	}
	fmt.Println("\n(voltage falls toward the 3.2 V checkpoint threshold as the outage nears;")
	fmt.Println(" blocks alive down there rarely see another access — EDBP's opportunity)")

	// Show what the zombie-aware classification says about the baseline:
	// with no predictor, every zombie is a missed prediction.
	p := r.Prediction
	total := p.TP + p.FP + p.TN + p.FN + p.MissedFN
	fmt.Printf("\nbaseline prediction outcomes over %d block generations:\n", total)
	fmt.Printf("  kept & reused (TN)            %6.1f%%\n", pct(p.TN, total))
	fmt.Printf("  kept, died at eviction (FN)   %6.1f%%\n", pct(p.FN, total))
	fmt.Printf("  kept, lost to outage (missed) %6.1f%%  <- zombies\n", pct(p.MissedFN, total))
}

func pct(x, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(x) / float64(total)
}
