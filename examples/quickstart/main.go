// Quickstart: simulate one benchmark on the RF-powered intermittent
// system under the baseline (NVSRAMCache), EDBP, and the paper's headline
// Cache Decay + EDBP combination, and print what EDBP buys.
package main

import (
	"fmt"
	"log"

	"edbp"
)

func main() {
	cfg := edbp.Config{
		App:         "crc32",
		Scale:       1.0,
		EnergyTrace: "RFHome",
	}

	results, err := edbp.RunAll(cfg,
		edbp.Baseline, edbp.CacheDecay, edbp.EDBP, edbp.CacheDecayEDBP, edbp.Ideal)
	if err != nil {
		log.Fatal(err)
	}
	base := results[0]

	fmt.Printf("app=%s on %s: %d instructions, %d power failures (baseline)\n\n",
		cfg.App, cfg.EnergyTrace, base.Instructions, base.PowerCycles)
	fmt.Printf("%-18s %10s %10s %10s %9s %9s\n",
		"scheme", "wall (ms)", "energy(µJ)", "D$ miss", "speedup", "energy ×")
	for _, r := range results {
		fmt.Printf("%-18v %10.2f %10.1f %9.2f%% %9.3f %9.3f\n",
			r.Scheme, r.WallSeconds*1e3, r.Energy.Total*1e6,
			100*r.CacheMissRate, r.SpeedupOver(base), r.EnergyRatioOver(base))
	}

	with := results[3] // CacheDecay+EDBP
	fmt.Printf("\nCache Decay + EDBP: %.1f%% less energy, %.1f%% faster, ",
		100*(1-with.EnergyRatioOver(base)), 100*(with.SpeedupOver(base)-1))
	fmt.Printf("coverage %.1f%%, accuracy %.1f%%\n",
		100*with.Prediction.Coverage, 100*with.Prediction.Accuracy)
	fmt.Printf("data cache leakage: %.1f µJ → %.1f µJ\n",
		base.Energy.DataCacheLeak*1e6, with.Energy.DataCacheLeak*1e6)
}
