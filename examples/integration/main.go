// Integration: Section VII-A's claim, live — EDBP is an *extension*, not
// a replacement. Every conventional dead block predictor (Cache Decay,
// AMC, counting-based, trace-based RefTrace) is blind to power outages;
// stacking EDBP on top lets each of them also harvest the zombie blocks.
package main

import (
	"fmt"
	"log"

	"edbp"
)

func main() {
	apps := []string{"crc32", "susan", "sha", "adpcm_d", "dijkstra", "rijndael"}
	pairs := []struct {
		name        string
		alone, with edbp.Scheme
	}{
		{"Cache Decay [32]", edbp.CacheDecay, edbp.CacheDecayEDBP},
		{"AMC [74]", edbp.AMC, edbp.AMCEDBP},
		{"Counting [34]", edbp.Counting, edbp.CountingEDBP},
		{"RefTrace [38]", edbp.RefTrace, edbp.RefTraceEDBP},
	}

	fmt.Printf("%-18s %12s %12s %12s\n", "conventional DBP", "alone", "+EDBP", "EDBP adds")
	for _, p := range pairs {
		var alone, with float64
		for _, app := range apps {
			rs, err := edbp.RunAll(edbp.Config{App: app, Scale: 0.5},
				edbp.Baseline, p.alone, p.with)
			if err != nil {
				log.Fatal(err)
			}
			alone += rs[1].SpeedupOver(rs[0])
			with += rs[2].SpeedupOver(rs[0])
		}
		n := float64(len(apps))
		fmt.Printf("%-18s %12.3f %12.3f %+11.1f%%\n",
			p.name, alone/n, with/n, 100*(with-alone)/n)
	}
	fmt.Println("\n(speedups over the NVSRAMCache baseline, averaged over six apps;")
	fmt.Println(" none of these predictors can see an approaching outage — EDBP can)")
}
