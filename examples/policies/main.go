// Policies: the paper's Figure 10 — EDBP piggybacks on whatever recency
// information the replacement policy keeps, so a policy that predicts
// imminent reuse better (DRRIP) also picks better zombies. This example
// compares EDBP across all five implemented policies.
package main

import (
	"fmt"
	"log"

	"edbp"
)

func main() {
	apps := []string{"crc32", "susan", "sha", "dijkstra"}
	policies := []string{"LRU", "DRRIP", "PLRU", "FIFO", "Random"}

	fmt.Printf("%-8s %12s %14s %14s %12s\n",
		"policy", "D$ miss", "EDBP speedup", "wrong kills", "combined")
	for _, pol := range policies {
		var speedE, speedC, miss float64
		var kills uint64
		for _, app := range apps {
			cfg := edbp.Config{App: app, Policy: pol, Scale: 0.5}
			rs, err := edbp.RunAll(cfg, edbp.Baseline, edbp.EDBP, edbp.CacheDecayEDBP)
			if err != nil {
				log.Fatal(err)
			}
			base, e, comb := rs[0], rs[1], rs[2]
			speedE += e.SpeedupOver(base)
			speedC += comb.SpeedupOver(base)
			miss += e.CacheMissRate
			kills += e.Prediction.FP
		}
		n := float64(len(apps))
		fmt.Printf("%-8s %11.2f%% %14.3f %14d %12.3f\n",
			pol, 100*miss/n, speedE/n, kills, speedC/n)
	}
	fmt.Println("\n(the paper contrasts LRU with DRRIP: better recency → fewer live blocks")
	fmt.Println(" mistaken for zombies → fewer wrong-kill misses; the rest are extensions)")
}
